"""The completion engine: text in, text out.

``SimulatedFoundationModel.complete`` is the only entry point — the same
surface the OpenAI API exposes.  Everything else in this module is the
machinery behind that surface: prompt parsing, demonstration-calibrated
thresholds, knowledge recall, and deterministic "temperature-0" noise.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.fm.error_signals import ErrorSignalModel
from repro.fm.impute_routes import ImputationReasoner
from repro.fm.induction import induce_transformation
from repro.fm.lexicon import default_lexicon
from repro.fm.parsing import (
    ErrorExampleParsed,
    ImputeExampleParsed,
    MatchExample,
    ParsedPrompt,
    TransformExampleParsed,
    parse_prompt,
    parse_serialized_entity,
)
from repro.fm.profiles import ModelProfile, get_profile
from repro.fm.semantic import SemanticComparator, stable_unit
from repro.fm.dates import parse_date, render_date
from repro.knowledge.world import World, default_world
from repro.text.normalize import normalize_value
from repro.text.similarity import jaro_winkler, monge_elkan
from repro.text.tokenize import word_tokens

#: What the model says when it does not understand the task well enough to
#: answer in the expected format (callers default this to "No", per the
#: paper's footnote 1).
_CONFUSED = "I'm not sure."


@dataclass(frozen=True)
class Completion:
    """A completion with the model's self-reported confidence.

    The paper's debuggability discussion (Section 5.2) proposes collecting
    "model confidence scores" to make FM pipelines monitorable; a real LM
    can "learn to express uncertainty about its own answers".  The
    simulator reports the decision margin behind each answer, squashed to
    [0, 1]: distance from the calibrated threshold for Yes/No tasks, route
    strength for generation tasks.
    """

    text: str
    confidence: float

_SCHEMA_DESC_RE = re.compile(
    r"^(?P<table>[\w]+)\.(?P<name>[\w]+)\s*\((?P<desc>.*?)\)"
    r"(?:\s+with values like (?P<samples>.*))?$"
)

# Generic tokens that appear in many attribute names and carry little
# matching signal on their own.
_SCHEMA_STOPWORDS = frozenset(
    {"id", "source", "value", "concept", "datetime", "date", "occurrence"}
)

#: Question phrasings the model has seen countless times in pretraining.
_FAMILIAR_QUESTION_RE = re.compile(r"\bthe same\b|\bsemantically equivalent\b")


def _calibrate_threshold(
    scored: list[tuple[float, bool]], prior: float
) -> float:
    """Demonstration-calibrated decision threshold.

    Scans candidate thresholds (between and just beside the demonstration
    scores) and keeps those whose demonstration error rate is within a
    ~20% tolerance of the best achievable — an LM does not contort its
    decision boundary to satisfy every last demo.  Among those it stays as
    close to its prior inclination as possible.  Single-class
    demonstration sets leave the prior untouched.
    """
    if not scored:
        return prior
    labels = {label for _score, label in scored}
    if len(labels) < 2:
        return prior
    points = sorted(score for score, _label in scored)
    candidates = [prior]
    candidates.extend(
        (points[i] + points[i + 1]) / 2.0 for i in range(len(points) - 1)
    )
    for point in points:
        candidates.append(max(point - 0.02, 0.0))
        candidates.append(min(point + 0.02, 1.0))
    candidates.append(max(points[0] - 0.05, 0.0))
    candidates.append(min(points[-1] + 0.05, 1.0))

    def errors(threshold: float) -> int:
        return sum(
            1 for score, label in scored if (score >= threshold) != label
        )

    tolerance = max(1, round(len(scored) / 5)) if len(scored) >= 4 else 0
    allowed = max(min(errors(t) for t in candidates), tolerance)
    eligible = [t for t in candidates if errors(t) <= allowed]
    return min(eligible, key=lambda t: abs(t - prior))


class SimulatedFoundationModel:
    """A GPT-3-style completion model over the synthetic world.

    >>> fm = SimulatedFoundationModel("gpt3-175b")
    >>> fm.complete("name: blue heron. addr: 10 main st. "
    ...             "phone: 415-775-7036. city?")   # doctest: +SKIP
    'San Francisco'
    """

    MATCH_PRIOR = 0.62
    SCHEMA_PRIOR = 0.52

    def __init__(self, model: str | ModelProfile = "gpt3-175b",
                 world: World | None = None):
        self.profile = model if isinstance(model, ModelProfile) else get_profile(model)
        self.world = world or default_world()
        self.kb = self.world.kb
        self.comparator = SemanticComparator(self.profile, self.kb)
        self.lexicon = default_lexicon(self.world)
        self.reasoner = ImputationReasoner(
            self.profile, self.kb, self.comparator, lexicon=self.lexicon
        )
        self.n_completions = 0
        #: Confidence of the most recent completion (set by the handlers).
        self._last_confidence = 0.5
        #: Whole-prompt salt for temperature sampling (set per complete()).
        self._sampling_salt = ""

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------ API

    def complete(self, prompt: str, max_tokens: int = 64,
                 temperature: float = 0.0) -> str:
        """Generate a completion for ``prompt``.

        ``temperature`` > 0 adds a deterministic-per-prompt jitter to the
        decision margin (sampling is simulated, not truly random, so runs
        stay reproducible).
        """
        if not isinstance(prompt, str):
            raise TypeError(f"prompt must be a string, got {type(prompt)!r}")
        self.n_completions += 1
        # Sampling at temperature > 0 depends on the entire context, so
        # otherwise-identical queries inside different prompts resample
        # differently (temperature 0 stays exactly reproducible).
        self._sampling_salt = prompt if temperature > 0 else ""
        parsed = parse_prompt(prompt)
        handler = {
            "match": self._answer_match,
            "schema": self._answer_schema,
            "error": self._answer_error,
            "impute": self._answer_impute,
            "transform": self._answer_transform,
        }.get(parsed.task)
        if handler is None:
            answer = self._answer_unknown(prompt)
        else:
            answer = handler(parsed, temperature)
        return answer[: max(1, max_tokens * 8)]

    def complete_many(self, prompts: list[str], **kwargs) -> list[str]:
        """Batch helper around :meth:`complete`."""
        return [self.complete(prompt, **kwargs) for prompt in prompts]

    def complete_verbose(self, prompt: str, **kwargs) -> Completion:
        """Like :meth:`complete`, with the model's confidence attached.

        Confidence semantics: ~0.5 means the answer sat on the decision
        boundary (or came from a weak fallback); values near 1.0 mean a
        wide margin or a direct knowledge-base recall.
        """
        self._last_confidence = 0.5
        text = self.complete(prompt, **kwargs)
        if text == _CONFUSED:
            return Completion(text=text, confidence=0.0)
        return Completion(text=text, confidence=self._last_confidence)

    # ----------------------------------------------------------- match task

    def _structure_signature(self, query: MatchExample) -> str:
        entity = parse_serialized_entity(query.left_text)
        if entity is None:
            return "flat"
        return ",".join(sorted(entity))

    def _decide_yes_no(
        self,
        score: float,
        demos_scored: list[tuple[float, bool]],
        prior: float,
        question: str,
        signature: str,
        margin_key: str,
        temperature: float,
    ) -> str:
        profile = self.profile
        question_norm = " ".join(question.casefold().split())
        # Familiar phrasings ("are X and Y the same?") behave predictably;
        # anything else lands wherever the model's priors put it — the
        # brittleness Table 4 measures.
        familiar = bool(_FAMILIAR_QUESTION_RE.search(question_norm))
        if familiar:
            format_bias = 0.0
        else:
            format_bias = (
                stable_unit(f"fmt|{profile.name}|{question_norm}|{signature}") - 0.5
            ) * profile.format_sensitivity * 0.6

        if demos_scored:
            calibrated = _calibrate_threshold(demos_scored, prior)
            threshold = (
                profile.icl_strength * calibrated
                + (1.0 - profile.icl_strength) * prior
            )
            # Majority-label bias (Zhao et al. 2021): a prompt stacked with
            # "No" demonstrations pulls answers toward "No" and vice versa.
            # Curated prompts are balanced; random ones pay this tax.
            n_positive = sum(1 for _s, label in demos_scored if label)
            n_negative = len(demos_scored) - n_positive
            threshold += 0.12 * (n_negative - n_positive) / len(demos_scored)
        else:
            miscalibration = (
                stable_unit(f"zs|{profile.name}|{signature}") - 0.5
            ) * (1.0 - profile.instruction_following) * 0.3
            threshold = prior + miscalibration

        threshold += format_bias
        # Without demonstrations the judgment itself is shakier: no format
        # grounding, no examples of what "the same" means for this data.
        zero_shot_jitter = (
            (1.0 - profile.instruction_following) * 0.5 if not demos_scored else 0.0
        )
        # Unbalanced demonstrations (nine Yes, one No) leave the model's
        # notion of the boundary mushy — randomly selected demos pay this
        # tax, curated balanced ones do not (Table 4's ±14.7 gap).
        imbalance_jitter = 0.0
        if demos_scored:
            n_positive = sum(1 for _s, label in demos_scored if label)
            n_negative = len(demos_scored) - n_positive
            balance = (
                min(n_positive, n_negative) / max(n_positive, n_negative)
                if n_positive and n_negative else 0.0
            )
            imbalance_jitter = 0.35 * (1.0 - balance)
        salt = getattr(self, "_sampling_salt", "")
        noise = (stable_unit(f"margin|{profile.name}|{margin_key}|{salt}") - 0.5) * (
            0.05 + zero_shot_jitter + imbalance_jitter + 0.25 * temperature
        )
        margin = abs(score + noise - threshold)
        # Exponential squash of the decision margin into [0.5, 1.0):
        # strictly monotone, so no two distinct margins collapse into one
        # confidence bucket (a clamped-linear map saturates every wide
        # margin at exactly 1.0, which blinds any downstream consumer —
        # confidence-routed cascades in particular — to the difference
        # between "fairly sure" and "certain").  Real LM confidences
        # derived from token logprobs are continuous the same way.
        self._last_confidence = 1.0 - 0.5 * math.exp(-3.0 * margin)
        return "Yes" if score + noise >= threshold else "No"

    def _answer_match(self, parsed: ParsedPrompt, temperature: float) -> str:
        query: MatchExample = parsed.query
        profile = self.profile
        if not parsed.demonstrations:
            # Zero-shot format failure: with no demonstration of the
            # expected Yes/No, the model periodically answers in free text
            # (the caller defaults those to "No", costing recall — the
            # paper's footnote 1).
            failure = (1.0 - profile.instruction_following) * 0.85
            failure_key = f"zsfail|{profile.name}|{query.left_text}|{query.right_text}"
            if stable_unit(failure_key) < failure:
                return _CONFUSED
        score = self.comparator.entity_similarity(query.left_text, query.right_text)
        demos_scored = [
            (
                self.comparator.entity_similarity(demo.left_text, demo.right_text),
                demo.label,
            )
            for demo in parsed.demonstrations
            if isinstance(demo, MatchExample) and demo.label is not None
        ]
        return self._decide_yes_no(
            score=score,
            demos_scored=demos_scored,
            prior=self.MATCH_PRIOR,
            question=query.question,
            signature=self._structure_signature(query),
            margin_key=f"{query.left_text}|{query.right_text}",
            temperature=temperature,
        )

    # ---------------------------------------------------------- schema task

    def _schema_similarity(self, left_text: str, right_text: str) -> float:
        left = _SCHEMA_DESC_RE.match(left_text.strip())
        right = _SCHEMA_DESC_RE.match(right_text.strip())
        if not (left and right):
            return self.comparator.value_similarity(left_text, right_text)
        floor = self.profile.knowledge_floor

        def name_tokens(match) -> list[str]:
            return [t for t in match.group("name").casefold().split("_") if t]

        tokens_a, tokens_b = name_tokens(left), name_tokens(right)
        full_a = " ".join(tokens_a)
        full_b = " ".join(tokens_b)

        # Full-name synonymy ("birthdate" ↔ "birth datetime").
        synonym = self.kb.lookup_one("attr_synonym", full_a, min_frequency=floor)
        name_score = 0.0
        if full_a == full_b or (synonym and synonym.casefold() == full_b):
            name_score = 1.0
        else:
            informative_a = [t for t in tokens_a if t not in _SCHEMA_STOPWORDS]
            informative_b = [t for t in tokens_b if t not in _SCHEMA_STOPWORDS]
            def token_match(a: str, b: str) -> float:
                if a == b:
                    return 1.0
                obj = self.kb.lookup_one("attr_synonym", a, min_frequency=floor)
                if obj and b in obj.casefold().split():
                    return 0.95
                jw = jaro_winkler(a, b)
                return jw if jw > 0.85 else 0.0
            if informative_a and informative_b:
                best = [
                    max(token_match(a, b) for b in informative_b)
                    for a in informative_a
                ]
                name_score = sum(best) / len(best)
            elif tokens_a and tokens_b:
                name_score = monge_elkan(tokens_a, tokens_b)

        desc_score = monge_elkan(
            word_tokens(left.group("desc")), word_tokens(right.group("desc"))
        )
        # Description synonym bridge: the model notices a description of A
        # naming B's concept ("rxnorm code of the drug" vs drug_concept_id).
        desc_tokens_a = set(word_tokens(left.group("desc")))
        desc_tokens_b = set(word_tokens(right.group("desc")))
        bridge = 0.0
        if desc_tokens_a & set(tokens_b) or desc_tokens_b & set(tokens_a):
            bridge = 0.5

        samples_a = left.group("samples") or ""
        samples_b = right.group("samples") or ""
        sample_score = 0.0
        if samples_a and samples_b:
            set_a = {s.strip().casefold() for s in samples_a.split(",")}
            set_b = {s.strip().casefold() for s in samples_b.split(",")}
            if set_a & set_b:
                sample_score = 1.0

        return min(
            1.0,
            0.40 * name_score + 0.25 * desc_score + 0.15 * max(bridge, 0)
            + 0.20 * sample_score,
        )

    def _answer_schema(self, parsed: ParsedPrompt, temperature: float) -> str:
        query: MatchExample = parsed.query
        profile = self.profile
        if not parsed.demonstrations:
            # Without demonstrations the model rarely understands what a
            # schema-correspondence question wants (paper: 0.5 F1).
            failure = 1.0 - profile.instruction_following * 0.15
            if stable_unit(f"schemafail|{profile.name}|{query.left_text}") < failure:
                return _CONFUSED
        score = self._schema_similarity(query.left_text, query.right_text)
        demos_scored = [
            (
                self._schema_similarity(demo.left_text, demo.right_text),
                demo.label,
            )
            for demo in parsed.demonstrations
            if isinstance(demo, MatchExample) and demo.label is not None
        ]
        return self._decide_yes_no(
            score=score,
            demos_scored=demos_scored,
            prior=self.SCHEMA_PRIOR,
            question=query.question,
            signature="schema",
            margin_key=f"{query.left_text}|{query.right_text}",
            temperature=temperature,
        )

    # ----------------------------------------------------------- error task

    def _answer_error(self, parsed: ParsedPrompt, temperature: float) -> str:
        del temperature
        query: ErrorExampleParsed = parsed.query
        profile = self.profile
        demos = [
            demo for demo in parsed.demonstrations
            if isinstance(demo, ErrorExampleParsed) and demo.label is not None
        ]
        signals = ErrorSignalModel(demos, profile, self.lexicon, self.kb)
        if not demos:
            # Zero-shot: the model has no concept of what counts as an
            # error here and defaults to "No"; only occasionally does an
            # egregious character-level anomaly provoke a "Yes".
            if (
                profile.can_spot_character_errors
                and signals.typo_signal(query.attribute, query.value)
                and stable_unit(f"zserr|{profile.name}|{query.value}")
                < profile.instruction_following * 0.12
            ):
                return "Yes"
            return "No"
        return "Yes" if signals.is_error(query.attribute, query.value) else "No"

    # ---------------------------------------------------------- impute task

    def _answer_impute(self, parsed: ParsedPrompt, temperature: float) -> str:
        del temperature
        query: ImputeExampleParsed = parsed.query
        profile = self.profile
        context = parse_serialized_entity(query.context_text) or {}
        demos = [
            demo for demo in parsed.demonstrations
            if isinstance(demo, ImputeExampleParsed) and demo.answer
        ]

        routes: list[str] | None = None
        if demos:
            verified = self.reasoner.verified_routes(demos)
            if verified:
                routes = verified
        candidate, route = self.reasoner.infer(context, query.attribute, routes)
        self._last_confidence = 0.9 if candidate is not None else 0.2
        if routes is not None and candidate is not None:
            self._last_confidence = 0.95  # demonstration-verified route
        if candidate is None:
            candidate = self.reasoner.fallback_guess(
                query.attribute, query.context_text
            )
        if not candidate:
            return _CONFUSED

        if demos:
            # Demonstrations ground the answer format (here: casing).
            if all(demo.answer == demo.answer.lower() for demo in demos):
                candidate = candidate.lower()
            return candidate

        # Zero-shot: no format grounding — the model embellishes.  A
        # correction request is the exception: the original value sits in
        # the prompt and anchors the output format.
        correction = query.attribute.casefold().startswith(
            ("corrected ", "fixed ", "repaired ")
        )
        embellish = (1.0 - profile.instruction_following) * 0.7
        if not correction and (
            stable_unit(f"embellish|{profile.name}|{query.context_text}") < embellish
        ):
            candidate = self._embellished(candidate, query.attribute)
        return candidate

    def _embellished(self, value: str, target: str) -> str:
        """Add the kind of helpful-but-format-breaking detail LMs volunteer."""
        target_folded = target.casefold()
        if "city" in target_folded:
            state = self.kb.lookup_one(
                "city_to_state", value, min_frequency=self.profile.knowledge_floor
            )
            return f"{value}, {state}" if state else f"the city of {value}"
        if target_folded in ("manufacturer", "brand", "maker"):
            return f"{value} Inc."
        return f"{target} is {value}"

    # -------------------------------------------------------- transform task

    def _answer_transform(self, parsed: ParsedPrompt, temperature: float) -> str:
        del temperature
        query: TransformExampleParsed = parsed.query
        profile = self.profile
        demos = [
            (demo.source, demo.target)
            for demo in parsed.demonstrations
            if isinstance(demo, TransformExampleParsed) and demo.target is not None
        ]
        if demos:
            exact = {source: target for source, target in demos}
            if query.source in exact:
                self._last_confidence = 1.0
                return exact[query.source]
            # Applying an induced program is fallible even for the largest
            # models (the paper's FM solves ~2/3 of transformation tests at
            # k=3): per-item slips, worse with weaker ICL.
            demo_signature = "|".join(f"{s}->{t}" for s, t in demos)
            failure = 0.15 + (1.0 - profile.icl_strength) * 0.5
            draw_key = f"induct|{profile.name}|{demo_signature}|{query.source}"
            if stable_unit(draw_key) < failure:
                return query.source
            hypothesis = induce_transformation(demos, profile, self.kb)
            if hypothesis is not None:
                result = hypothesis[1](query.source)
                if result is not None:
                    self._last_confidence = 0.9
                    return result
            self._last_confidence = 0.1  # echoing the input back
            return query.source
        return self._zero_shot_transform(parsed.instruction or "", query.source)

    def _zero_shot_transform(self, instruction: str, source: str) -> str:
        """Keyword-routed zero-shot transformation.

        Two gates model why zero-shot transformation trails few-shot so
        badly (Table 3): executing a *described* transformation requires
        mapping the description onto an internal skill.  Syntactic skills
        gate on instruction following alone; knowledge transforms must
        additionally align the description with the right relation, which
        fails more often.
        """
        profile = self.profile
        text = instruction.casefold()
        if not text:
            return source
        draw = stable_unit(f"zstransform|{profile.name}|{text}")
        syntactic_gate = profile.instruction_following * 0.65
        semantic_gate = profile.instruction_following * 0.3
        floor = profile.knowledge_floor

        # Knowledge routes.
        if draw < semantic_gate:
            if "area code" in text:
                return self.kb.lookup_one("city_to_area_code", source, min_frequency=floor) or source
            if "state" in text and "abbrev" in text:
                return (
                    self.kb.lookup_one("state_name_to_abbr", source, min_frequency=floor)
                    or self.kb.lookup_one("city_to_state", source, min_frequency=floor)
                    or source
                )
            if "state" in text:
                return self.kb.lookup_one("city_to_state", source, min_frequency=floor) or source
            if "city" in text:
                return self.kb.lookup_one("zip_to_city", source, min_frequency=floor) or source
            if "month" in text and "number" in text:
                return self.kb.lookup_one("month_to_number", source, min_frequency=floor) or source
            if "month" in text and ("full" in text or "expand" in text):
                return self.kb.lookup_one("month_abbrev", source, min_frequency=floor) or source
            if "month" in text and "abbrev" in text:
                return source[:3]
            if "to iso" in text or ("iso" in text and "convert" in text):
                date = parse_date(source)
                return render_date(date, "iso") if date else source

        # Syntactic routes.
        if draw < syntactic_gate:
            if "extension" in text:
                return source.rsplit(".", 1)[-1]
            if "domain" in text:
                without_scheme = source.split("//")[-1]
                host = without_scheme.split("/")[0]
                return host[4:] if host.startswith("www.") else host
            if "initial" in text:
                words = source.split()
                return "".join(word[0] + "." for word in words) if len(words) > 1 else source
            if "first name then last" in text or "swap" in text:
                if ", " in source:
                    head, _sep, tail = source.partition(", ")
                    return f"{tail} {head}"
                return source
            if "pad" in text and "zero" in text:
                return source.zfill(5)
            if "middle" in text and "-" in source:
                parts = source.split("-")
                return parts[len(parts) // 2] if len(parts) >= 3 else source
            if "currency" in text:
                return source.replace("$", "").replace(",", "")
            if "decimal" in text:
                return source.split(".")[0]
            if "upper" in text:
                return source.upper()
            if "lower" in text:
                return source.lower()
            if "title" in text:
                return " ".join(
                    word.capitalize() for word in source.replace("_", " ").split()
                )
            if "mm/dd/yyyy" in text or ("us" in text.split() and "date" in text):
                date = parse_date(source)
                return render_date(date, "us_slash") if date else source
        return source

    # ----------------------------------------------------------- fallthrough

    def _answer_unknown(self, prompt: str) -> str:
        """Free-text continuation for unrecognized prompts.

        A real LM would ramble; the simulator picks a canned continuation
        keyed by the prompt so the behaviour is at least deterministic.
        """
        tokens = word_tokens(prompt)[-3:]
        seedling = " ".join(tokens) if tokens else "that"
        choices = (
            f"Here is more about {seedling}.",
            _CONFUSED,
            f"{seedling.capitalize()}.",
        )
        return choices[int(stable_unit(f"unk|{prompt}") * len(choices))]
