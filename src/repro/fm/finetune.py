"""Finetuning the smaller simulated FMs (paper Appendix A).

Two regimes, matching the paper's setup:

* **Full finetuning** (:class:`FinetunedModel`) — every weight updates.  We
  model this as task heads over the *informative* representations the model
  can reshape for the task: per-attribute semantic similarities for
  matching, full error-signal features for detection, and a token→value
  associator for imputation.  Rich, low-dimensional features ⇒ high sample
  efficiency.
* **Adapter finetuning** (:class:`AdapterModel`) — the base model stays
  frozen and a small head trains on its *pooled* output embeddings.  We
  model that as hashed bag-of-token features: generic, high-dimensional,
  data-hungry — and, crucially, frozen: character-level error features are
  only present if the base model could compute them (which is why adapters
  never close the Hospital gap).

Both regimes share a property the paper's Table 5 hinges on: a finetuned
head can only predict values present in its training data.  The prompting
interface (and its pretraining recall) is traded away — catastrophic
forgetting of the few-shot skill.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair
from repro.fm.error_signals import ErrorSignalModel
from repro.fm.lexicon import default_lexicon
from repro.fm.profiles import ModelProfile, get_profile
from repro.fm.semantic import SemanticComparator
from repro.knowledge.world import World, default_world
from repro.core.serialization import SerializationConfig, serialize_row
from repro.ml.features import FeatureHasher
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.text.normalize import normalize_value
from repro.text.patterns import is_numeric
from repro.text.tokenize import char_ngrams, word_tokens

#: Fraction of parameters an adapter trains (paper: ≈5%).
ADAPTER_PARAMETER_FRACTION = 0.05


@dataclass
class FinetuningResult:
    """Bookkeeping for the efficiency plots (Figures 4 and 5)."""

    model_name: str
    mode: str
    task: str
    n_samples: int
    n_trainable_parameters: int
    epochs: int = 30


def _row_tokens(row: dict, skip: str | None = None) -> list[str]:
    tokens: list[str] = []
    for attribute, value in row.items():
        if attribute == skip or not value:
            continue
        for token in word_tokens(normalize_value(value)):
            tokens.append(f"{attribute}={token}")
            # Sub-split hyphenated tokens so e.g. a phone number exposes
            # its area code (RoBERTa-style subword behaviour).
            for piece in token.replace("/", "-").split("-"):
                if piece and piece != token:
                    tokens.append(f"{attribute}={piece}")
    return tokens


class _BaseFinetunable:
    """Shared plumbing for both finetuning regimes."""

    mode = "base"

    def __init__(self, model: str | ModelProfile = "gpt3-6.7b",
                 world: World | None = None, seed: int = 0):
        self.profile = model if isinstance(model, ModelProfile) else get_profile(model)
        self.world = world or default_world()
        self.kb = self.world.kb
        self.comparator = SemanticComparator(self.profile, self.kb)
        self.lexicon = default_lexicon(self.world)
        self.seed = seed
        self.task: str | None = None
        self.result: FinetuningResult | None = None
        # Task heads, populated by fit_*:
        self._classifier: LogisticRegression | None = None
        self._hasher: FeatureHasher | None = None
        self._match_feature_names: list[str] = []
        self._imputer: MultinomialNaiveBayes | None = None
        self._error_signals: ErrorSignalModel | None = None
        self._error_feature_fn = None

    @property
    def name(self) -> str:
        return f"{self.profile.name}-{self.mode}"

    def _n_trainable(self) -> int:
        if self.mode == "full":
            return self.profile.n_parameters
        return int(self.profile.n_parameters * ADAPTER_PARAMETER_FRACTION)

    def _record(self, task: str, n_samples: int) -> None:
        self.task = task
        self.result = FinetuningResult(
            model_name=self.profile.name,
            mode=self.mode,
            task=task,
            n_samples=n_samples,
            n_trainable_parameters=self._n_trainable(),
        )

    # -- serialization shared with prompting -------------------------------

    @staticmethod
    def _pair_texts(pair: MatchingPair) -> tuple[str, str]:
        config = SerializationConfig()
        return serialize_row(pair.left, config), serialize_row(pair.right, config)

    # -- entity matching -----------------------------------------------------

    def _match_features(self, pair: MatchingPair) -> np.ndarray:
        raise NotImplementedError

    def fit_matching(self, pairs: list[MatchingPair]) -> "FinetuningResult":
        if not pairs:
            raise ValueError("cannot finetune on an empty pair list")
        features = np.vstack([self._match_features(pair) for pair in pairs])
        labels = np.array([float(pair.label) for pair in pairs])
        l2 = 1e-3 if self.mode == "full" else 3e-3
        self._classifier = LogisticRegression(l2=l2, epochs=400).fit(features, labels)
        self._record("entity_matching", len(pairs))
        return self.result

    def predict_matching(self, pair: MatchingPair) -> bool:
        if self._classifier is None or self.task != "entity_matching":
            raise RuntimeError("model is not finetuned for entity matching")
        features = self._match_features(pair).reshape(1, -1)
        return bool(self._classifier.predict(features)[0])

    # -- imputation ------------------------------------------------------------

    def fit_imputation(self, examples: list[ImputationExample]) -> "FinetuningResult":
        if not examples:
            raise ValueError("cannot finetune on an empty example list")
        alpha, prior_weight = self._imputation_hyperparameters()
        self._imputer = MultinomialNaiveBayes(
            alpha=alpha, complement=True, prior_weight=prior_weight
        )
        for example in examples:
            tokens = self._imputation_tokens(example)
            self._imputer.partial_fit(tokens, example.answer.casefold())
        self._record("imputation", len(examples))
        return self.result

    def _imputation_hyperparameters(self) -> tuple[float, float]:
        """(smoothing, prior weight) per regime.

        Full finetuning fits the head distribution hard: strong priors,
        light smoothing — sample-efficient, but rare values get
        suppressed.  Adapters train a fresh head over frozen features:
        heavier smoothing (more data needed) with a near-uniform prior —
        which is exactly why Table 5 shows the adapter learning rare
        entities *better* than full finetuning at full data.
        """
        # Smoothing scales inversely with model capacity: a shallower base
        # model yields mushier representations, so its head needs more data
        # to pin down the same associations (less sample-efficient).
        capacity = max(self.profile.semantic_depth, 0.2)
        scale = (0.62 / capacity) ** 2
        if self.mode == "full":
            return 0.10 * scale, 0.15
        return 0.4 * scale, 0.05

    def _imputation_tokens(self, example: ImputationExample) -> list[str]:
        tokens = _row_tokens(example.row, skip=example.attribute)
        if self.mode == "adapter":
            # Frozen pooled embeddings lose attribute alignment: the
            # adapter head sees bare tokens without their column identity.
            return [token.split("=", 1)[1] for token in tokens]
        return tokens

    def predict_imputation(self, example: ImputationExample) -> str:
        if self._imputer is None or self.task != "imputation":
            raise RuntimeError("model is not finetuned for imputation")
        tokens = self._imputation_tokens(example)
        return str(self._imputer.predict(tokens))

    # -- error detection ----------------------------------------------------------

    def _error_features(self, example: ErrorExample,
                        signals: ErrorSignalModel) -> np.ndarray:
        value = example.row.get(example.attribute) or ""
        char_level_visible = (
            self.mode == "full" or self.profile.can_spot_character_errors
        )
        typo = float(signals.typo_signal(example.attribute, value)) if (
            char_level_visible and value
        ) else 0.0
        domain = float(signals.domain_signal(example.attribute, value)) if value else 0.0
        numeric = 1.0 if value and is_numeric(value.strip()) else 0.0
        return np.array([typo, domain, numeric, 1.0])

    def fit_error_detection(self, examples: list[ErrorExample]) -> "FinetuningResult":
        if not examples:
            raise ValueError("cannot finetune on an empty example list")
        # The training rows double as the signal model's clean reference.
        from repro.fm.parsing import ErrorExampleParsed

        # Supervised finetuning learns from *labels*: only the labeled
        # question cells feed the signal vocabulary.  (Unlabeled context
        # rows contain undetected errors that would poison it.)
        demos = [
            ErrorExampleParsed(
                context_text="",
                attribute=example.attribute,
                value=example.row.get(example.attribute) or "",
                question="",
                label=example.label,
            )
            for example in examples
        ]
        self._error_signals = ErrorSignalModel(demos, self.profile, self.lexicon, self.kb)
        features = np.vstack([
            self._error_features(example, self._error_signals)
            for example in examples
        ])
        labels = np.array([float(example.label) for example in examples])
        self._classifier = LogisticRegression(l2=1e-2, epochs=400).fit(features, labels)
        self._record("error_detection", len(examples))
        return self.result

    def predict_error(self, example: ErrorExample) -> bool:
        if self._error_signals is None or self.task != "error_detection":
            raise RuntimeError("model is not finetuned for error detection")
        features = self._error_features(example, self._error_signals).reshape(1, -1)
        return bool(self._classifier.predict(features)[0])


class FinetunedModel(_BaseFinetunable):
    """Fully finetuned small FM: informative per-attribute features."""

    mode = "full"

    def _match_features(self, pair: MatchingPair) -> np.ndarray:
        left_text, right_text = self._pair_texts(pair)
        features = self.comparator.entity_features(left_text, right_text)
        if not self._match_feature_names:
            self._match_feature_names = sorted(features)
        return np.array([
            features.get(name, 0.0) for name in self._match_feature_names
        ])


class AdapterModel(_BaseFinetunable):
    """Adapter-finetuned small FM: generic hashed features, frozen base."""

    mode = "adapter"

    #: Hashed feature width scales with the frozen model's capacity.
    def _feature_dim(self) -> int:
        return max(128, int(512 * self.profile.semantic_depth))

    def _match_features(self, pair: MatchingPair) -> np.ndarray:
        if self._hasher is None:
            self._hasher = FeatureHasher(dim=self._feature_dim(), salt=self.profile.name)
        left_text, right_text = self._pair_texts(pair)
        grams_left = Counter(char_ngrams(normalize_value(left_text), 3))
        grams_right = Counter(char_ngrams(normalize_value(right_text), 3))
        # Symmetric-difference grams: what the pooled embeddings disagree on.
        tokens: list[str] = []
        for gram in set(grams_left) | set(grams_right):
            difference = abs(grams_left[gram] - grams_right[gram])
            tokens.extend([f"d:{gram}"] * difference)
            if grams_left[gram] and grams_right[gram]:
                tokens.append(f"s:{gram}")
        vector = self._hasher.transform_one(tokens)
        overall = self.comparator.entity_similarity(left_text, right_text)
        return np.concatenate([vector, [overall]])
