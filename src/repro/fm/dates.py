"""Date understanding for the simulated FM.

Recognizes a handful of common layouts, parses them into (year, month,
day), and renders them back — the substrate for format-conversion
transformations ("Mar 14, 2011" → "2011-03-14").  Month-name knowledge is
head knowledge every profile recalls.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.knowledge.calendar import MONTHS, month_number

_PATTERNS: tuple[tuple[str, re.Pattern], ...] = (
    ("iso", re.compile(r"^(?P<y>\d{4})-(?P<m>\d{1,2})-(?P<d>\d{1,2})$")),
    ("us_slash", re.compile(r"^(?P<m>\d{1,2})/(?P<d>\d{1,2})/(?P<y>\d{4})$")),
    ("us_dash", re.compile(r"^(?P<m>\d{1,2})-(?P<d>\d{1,2})-(?P<y>\d{4})$")),
    ("textual_mdy", re.compile(
        r"^(?P<mon>[A-Za-z]{3,9})\.?\s+(?P<d>\d{1,2}),?\s+(?P<y>\d{4})$")),
    ("textual_dmy", re.compile(
        r"^(?P<d>\d{1,2})\s+(?P<mon>[A-Za-z]{3,9})\.?\s+(?P<y>\d{4})$")),
)

RENDER_FORMATS = (
    "iso", "us_slash", "us_dash", "textual_mdy", "textual_dmy",
    "textual_mdy_abbrev",
)


@dataclass(frozen=True)
class ParsedDate:
    year: int
    month: int
    day: int
    layout: str


def parse_date(text: str) -> ParsedDate | None:
    """Parse ``text`` into a date if it matches a known layout."""
    stripped = text.strip()
    for layout, pattern in _PATTERNS:
        match = pattern.match(stripped)
        if not match:
            continue
        groups = match.groupdict()
        if "mon" in groups:
            month = month_number(groups["mon"])
            if month is None:
                return None
        else:
            month = int(groups["m"])
        year, day = int(groups["y"]), int(groups["d"])
        if not (1 <= month <= 12 and 1 <= day <= 31):
            return None
        return ParsedDate(year=year, month=month, day=day, layout=layout)
    return None


def render_date(date: ParsedDate, layout: str) -> str:
    """Render a parsed date in ``layout`` (one of ``RENDER_FORMATS``)."""
    month_name = MONTHS[date.month - 1]
    if layout == "iso":
        return f"{date.year}-{date.month:02d}-{date.day:02d}"
    if layout == "us_slash":
        return f"{date.month:02d}/{date.day:02d}/{date.year}"
    if layout == "us_dash":
        return f"{date.month:02d}-{date.day:02d}-{date.year}"
    if layout == "textual_mdy":
        return f"{month_name} {date.day}, {date.year}"
    if layout == "textual_mdy_abbrev":
        return f"{month_name[:3]} {date.day}, {date.year}"
    if layout == "textual_dmy":
        return f"{date.day} {month_name} {date.year}"
    raise ValueError(f"unknown date layout {layout!r}")


def induce_date_conversion(
    examples: list[tuple[str, str]]
) -> str | None:
    """If every example is a date-format conversion, return the output layout.

    Returns ``None`` unless all example inputs parse as dates and one single
    output layout reproduces every example output exactly.
    """
    if not examples:
        return None
    parsed = [parse_date(source) for source, _target in examples]
    if any(date is None for date in parsed):
        return None
    for layout in RENDER_FORMATS:
        if all(
            render_date(date, layout) == target.strip()
            for date, (_source, target) in zip(parsed, examples)
        ):
            return layout
    return None
