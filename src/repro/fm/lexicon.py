"""The simulated model's pretraining vocabulary.

A real web-scale FM has seen virtually every common English word and every
entity name in our synthetic world.  The lexicon materializes that: the
set of word tokens appearing in the world corpora, the domain vocabularies
in :mod:`repro.knowledge`, and a core English function/content word list.

The engine uses the lexicon for *plausibility* checks — a token that is
not in the lexicon but lies within edit distance 1–2 of a lexicon token is
the signature of a typo (the Hospital benchmark's corruption style).
"""

from __future__ import annotations

from functools import lru_cache

from repro.knowledge.calendar import MONTHS, WEEKDAYS
from repro.knowledge.census import ADULT_DOMAINS
from repro.knowledge.geography import CUISINES, STREET_NAMES
from repro.knowledge.medical import (
    CONDITIONS_MEASURES,
    HOSPITAL_NAME_PARTS,
    OMOP_ATTRIBUTES,
    SYNTHEA_ATTRIBUTES,
)
from repro.knowledge.world import World, default_world
from repro.text.normalize import ABBREVIATIONS
from repro.text.tokenize import word_tokens

# Core English: function words plus the content words our templates and
# generators lean on.  (A real FM's vocabulary is unbounded; this list only
# needs to cover words that might appear in a *clean* cell.)
_CORE_ENGLISH = """
a an and are at be but by for from has have in is it of on or the to with
was were will would can could should this that these those not no yes
hospital clinic center medical health care street avenue boulevard road
drive lane highway suite apartment north south east west old new upper
lower town city county state zip code phone number address name type
restaurant cafe grill bistro kitchen bar eatery food menu
company corporation incorporated limited international manufacturing
department university college school institute
black silver white refurbished retail box oem pack case compact
professional home edition upgrade full version windows wireless digital
camera camcorder monitor printer router flash drive external hard
noise canceling headphones bluetooth speaker navigator player theater
system scanner inkjet memory card mouse keyboard webcam projector
receiver antivirus office suite photo editor video tax software backup
utility firewall tuneup drawing pdf remote access cad
song artist album genre price time released explicit live
title authors venue year conference proceedings journal transactions
beer brewery ales brewing factory style stout ale lager pilsner porter
saison witbier barleywine hefeweizen
age workclass education marital status occupation relationship race sex
hours per week country income private federal local gov
measure condition discharge arrival instructions evaluation function
vaccination culture blood timing selection prevention surgical infection
pneumonia failure heart attack aspirin antibiotic antibiotics beta
blocker fibrinolytic inhibitor prophylactic pneumococcal hour minutes
stopped within initial before at
main oak maple elm cedar lake river valley view mission ocean park
church pearl spring canal front bay grand union melrose ventura colorado
sunset pacific coast point highland market broadway
"""


def _add_text(vocabulary: set[str], text: str) -> None:
    vocabulary.update(word_tokens(text))


@lru_cache(maxsize=2)
def _build_lexicon(world: World) -> frozenset[str]:
    vocabulary: set[str] = set()
    _add_text(vocabulary, _CORE_ENGLISH)
    vocabulary.update(ABBREVIATIONS)
    vocabulary.update(ABBREVIATIONS.values())

    for street in STREET_NAMES:
        _add_text(vocabulary, street)
    for cuisine in CUISINES:
        _add_text(vocabulary, cuisine)
    for part in HOSPITAL_NAME_PARTS:
        _add_text(vocabulary, part)
    for condition, measures in CONDITIONS_MEASURES:
        _add_text(vocabulary, condition)
        for measure in measures:
            _add_text(vocabulary, measure)
    for domain in ADULT_DOMAINS.values():
        for value in domain:
            _add_text(vocabulary, value)
    for month in MONTHS:
        _add_text(vocabulary, month)
        vocabulary.add(month[:3].lower())
    for day in WEEKDAYS:
        _add_text(vocabulary, day)
        vocabulary.add(day[:3].lower())
    for attribute in SYNTHEA_ATTRIBUTES + OMOP_ATTRIBUTES:
        _add_text(vocabulary, attribute.name.replace("_", " "))
        _add_text(vocabulary, attribute.description)

    for city in world.cities:
        _add_text(vocabulary, city.name)
        _add_text(vocabulary, city.state_name)
        vocabulary.add(city.state_abbr.lower())
    for product in world.products:
        _add_text(vocabulary, product.name)
    for track in world.tracks:
        _add_text(vocabulary, track.title)
        _add_text(vocabulary, track.artist)
        _add_text(vocabulary, track.album)
        _add_text(vocabulary, track.genre)
    for paper in world.papers:
        _add_text(vocabulary, paper.title)
        for author in paper.authors:
            _add_text(vocabulary, author)
        _add_text(vocabulary, paper.venue)
    for restaurant in world.restaurants:
        _add_text(vocabulary, restaurant.name)
        _add_text(vocabulary, restaurant.address)
    for beer in world.beers:
        _add_text(vocabulary, beer.name)
        _add_text(vocabulary, beer.brewery)
        _add_text(vocabulary, beer.style)

    return frozenset(vocabulary)


def default_lexicon(world: World | None = None) -> frozenset[str]:
    """The cached pretraining vocabulary for ``world`` (default world)."""
    return _build_lexicon(world or default_world())
