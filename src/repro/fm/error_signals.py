"""Error-detection signals the simulated FM derives from a prompt.

Few-shot error detection works because demonstrations teach the model what
"error" means *for this dataset*.  The engine operationalizes that as a set
of signals computed from the demonstrations plus the model's pretraining
lexicon:

* **Typo signals** (Hospital-style corruption) — a token that is not in
  the lexicon/demo vocabulary but is within edit distance 1–2 of a known
  token, or a digits+`x` hybrid, or a value whose structural pattern
  deviates from the attribute's unanimous demo pattern.  These require
  character-level reasoning and are gated on
  ``profile.can_spot_character_errors`` — subword tokenization denies them
  to smaller models, which is why GPT-3-6.7B scores ≈0 F1 on Hospital
  while acing Adult.
* **Domain signals** (Adult-style violation) — the value belongs to a
  different attribute's observed domain, or falls far outside the numeric
  range the demonstrations establish.  These need only in-context
  learning, not depth.
"""

from __future__ import annotations

from collections import defaultdict

from repro.fm.parsing import ErrorExampleParsed, parse_serialized_entity
from repro.fm.profiles import ModelProfile
from repro.knowledge.base import KnowledgeBase
from repro.text.patterns import is_numeric, value_pattern
from repro.text.similarity import levenshtein
from repro.text.tokenize import word_tokens


class ErrorSignalModel:
    """Signals learned from the demonstrations of one ED prompt."""

    def __init__(
        self,
        demonstrations: list[ErrorExampleParsed],
        profile: ModelProfile,
        lexicon: frozenset[str],
        kb: KnowledgeBase | None = None,
    ):
        self.profile = profile
        self.lexicon = lexicon
        self.kb = kb
        self.attribute_values: dict[str, set[str]] = defaultdict(set)
        self.attribute_patterns: dict[str, set[str]] = defaultdict(set)
        self.demo_tokens: set[str] = set()
        self._ingest(demonstrations)

    def _ingest(self, demonstrations: list[ErrorExampleParsed]) -> None:
        # Values labeled dirty anywhere must never enter the clean
        # vocabulary — context rows repeat the same cells, and absorbing a
        # corrupted token as "known" would mask every later occurrence.
        known_dirty = {
            (demo.attribute, demo.value.casefold().strip())
            for demo in demonstrations
            if demo.label is True and demo.value
        }
        dirty_values = {value for _attr, value in known_dirty}
        for demo in demonstrations:
            # The question cell itself, when labeled clean, is trusted.
            if demo.label is False and demo.value:
                self._observe(demo.attribute, demo.value)
            # Context rows are overwhelmingly clean cells; a real LM reads
            # them as examples of what this table's values look like.
            entity = parse_serialized_entity(demo.context_text) or {}
            for attribute, value in entity.items():
                if not value:
                    continue
                folded = value.casefold().strip()
                if (attribute, folded) in known_dirty or folded in dirty_values:
                    continue
                self._observe(attribute, value)

    def _observe(self, attribute: str, value: str) -> None:
        folded = value.casefold().strip()
        self.attribute_values[attribute].add(folded)
        self.attribute_patterns[attribute].add(value_pattern(folded))
        self.demo_tokens.update(word_tokens(folded))

    @property
    def has_demonstrations(self) -> bool:
        return bool(self.attribute_values)

    # -- token plausibility --------------------------------------------------

    def _token_known(self, token: str) -> bool:
        if token in self.lexicon or token in self.demo_tokens:
            return True
        return is_numeric(token)

    def _near_miss(self, token: str) -> bool:
        """Unknown token one or two edits from a known token of same length."""
        if len(token) < 2:
            return False
        budget = 1 if len(token) <= 5 else 2
        for known in self.demo_tokens:
            if abs(len(known) - len(token)) <= budget:
                if levenshtein(token, known, max_distance=budget) <= budget:
                    return True
        # The lexicon is large; restrict to candidates sharing a first or
        # last character to keep this linear scan honest but cheap.
        for known in self.lexicon:
            if abs(len(known) - len(token)) > budget:
                continue
            if known and token and known[0] != token[0] and known[-1] != token[-1]:
                continue
            if levenshtein(token, known, max_distance=budget) <= budget:
                return True
        return False

    @staticmethod
    def _digits_with_x(token: str) -> bool:
        """'100x5'-style hybrids: digits with an embedded x."""
        if "x" not in token:
            return False
        stripped = token.replace("x", "")
        return stripped.isdigit() and len(stripped) >= 1

    # -- signals ---------------------------------------------------------------

    def typo_signal(self, attribute: str, value: str) -> bool:
        """Character-level corruption evidence (depth-gated by the caller)."""
        folded = value.casefold().strip()
        if folded in self.attribute_values.get(attribute, ()):
            return False
        for token in word_tokens(folded):
            if self._digits_with_x(token):
                return True
            if not self._token_known(token) and self._near_miss(token):
                return True
        # Structural deviation from a unanimous attribute pattern.
        patterns = self.attribute_patterns.get(attribute)
        if patterns and len(patterns) == 1:
            if value_pattern(folded) not in patterns:
                return True
        return False

    def domain_signal(self, attribute: str, value: str) -> bool:
        """Wrong-domain or out-of-range evidence (needs only ICL)."""
        folded = value.casefold().strip()
        own = self.attribute_values.get(attribute, set())
        # Numeric range learned from demonstrations.  Numbers are never
        # treated as categorical domain members — an age of 47 showing up
        # among hours-per-week values means nothing.
        own_numeric = [float(v) for v in own if is_numeric(v)]
        if is_numeric(folded):
            if not own_numeric:
                return False
            low, high = min(own_numeric), max(own_numeric)
            # Ten demonstrations bracket the range loosely; the model's
            # common sense extends it by a full span in each direction.
            span = max(high - low, 1.0)
            number = float(folded)
            if number < 0 and low >= 0:
                return True  # a sign flip is visible even to a subword model
            if number < low - span or number > high + span:
                return True
            return False
        # Pretrained domain semantics first: the model *knows* which
        # attribute a category value belongs to, and that knowledge beats
        # demonstration context (which may itself contain dirty cells).
        if self.kb is not None:
            domain = self.kb.lookup_one(
                "census_domain", folded,
                min_frequency=self.profile.knowledge_floor,
            )
            if domain is not None:
                return domain.casefold() != attribute.casefold()
        if folded in own:
            return False
        # Categorical cross-domain membership observed in the demos.
        for other_attribute, values in self.attribute_values.items():
            if other_attribute == attribute:
                continue
            if folded in values:
                return True
        return False

    # -- decision -------------------------------------------------------------

    def is_error(self, attribute: str, value: str) -> bool:
        """Combined few-shot decision for one cell."""
        if not value.strip():
            return False
        if self.has_demonstrations and self.profile.icl_strength >= 0.55:
            if self.domain_signal(attribute, value):
                return True
        if self.profile.can_spot_character_errors:
            if self.typo_signal(attribute, value):
                return True
        return False
