"""The simulated foundation model.

A text-in/text-out completion engine standing in for the GPT-3 family.  It
has no task-specific entry points: callers build a natural-language prompt
(zero-shot or with demonstrations) and read the generated string, exactly
as they would against the OpenAI API.  Internally the engine

1. parses the prompt into (instruction, demonstrations, query) — the
   mechanical analogue of in-context learning,
2. answers the query with similarity reasoning, frequency-gated knowledge
   recall and demonstration-calibrated decision thresholds,
3. modulates everything by a size-dependent capability profile, so the
   1.3B / 6.7B / 175B variants reproduce the paper's scaling behaviour.

See DESIGN.md §4 for the mechanism-by-mechanism mapping to the paper's
findings.
"""

from repro.fm.profiles import (
    MODEL_PROFILES,
    ModelProfile,
    get_profile,
)
from repro.fm.engine import Completion, SimulatedFoundationModel
from repro.fm.finetune import AdapterModel, FinetunedModel, FinetuningResult

__all__ = [
    "AdapterModel",
    "Completion",
    "FinetunedModel",
    "FinetuningResult",
    "MODEL_PROFILES",
    "ModelProfile",
    "SimulatedFoundationModel",
    "get_profile",
]
