"""In-context program induction for transformation prompts.

Given Input/Output demonstration pairs, the simulated FM tries, in order:

1. **Knowledge route** — a single knowledge-base relation consistent with
   every demonstration (city → state, month → number, zip → city …),
   gated by the profile's knowledge floor.  This is the route no string
   program can imitate and the reason the FM dominates the semantic
   Bing-QueryLogs cases.
2. **Date route** — a date-layout conversion consistent with the demos.
3. **Syntactic route** — a small search over the model's latent string
   programs (split/take, case mapping, character removal, affixing,
   initials, zero-padding), composed up to depth 2.  The repertoire is
   narrower than a dedicated synthesizer like TDE — deliberately: the FM
   is a generalist.

``icl_strength`` scales the syntactic repertoire and search depth, so
smaller models induce fewer programs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.fm.dates import induce_date_conversion, parse_date, render_date
from repro.fm.profiles import ModelProfile
from repro.knowledge.base import KnowledgeBase

Program = Callable[[str], "str | None"]


# ---------------------------------------------------------------------------
# Knowledge route
# ---------------------------------------------------------------------------

def induce_knowledge_relation(
    examples: list[tuple[str, str]],
    kb: KnowledgeBase,
    floor: float,
) -> str | None:
    """A single KB relation that explains every demonstration, if any."""
    if len(examples) < 2:
        return None
    for relation in sorted(kb.relations()):
        consistent = True
        for source, target in examples:
            answer = kb.lookup_one(relation, source.strip(), min_frequency=floor)
            if answer is None or answer.casefold() != target.strip().casefold():
                consistent = False
                break
        if consistent:
            return relation
    return None


# ---------------------------------------------------------------------------
# Syntactic route
# ---------------------------------------------------------------------------

_SEPARATORS = (" ", "-", "_", "/", ".", ", ", "|", "//www.")
_REMOVABLE = ("$", ",", "(", ")", " ", "-", '"')


def _take(separator: str, index: int) -> Program:
    def program(value: str) -> str | None:
        parts = value.split(separator)
        if len(parts) < 2:
            return None
        try:
            return parts[index]
        except IndexError:
            return None
    return program


def _swap_comma(value: str) -> str | None:
    if ", " not in value:
        return None
    head, _sep, tail = value.partition(", ")
    return f"{tail} {head}"


def _initials(value: str) -> str | None:
    words = value.split()
    if len(words) < 2:
        return None
    return "".join(word[0] + "." for word in words)


def _remove(char: str) -> Program:
    def program(value: str) -> str | None:
        if char not in value:
            return None
        return value.replace(char, "")
    return program


def _replace(old: str, new: str) -> Program:
    def program(value: str) -> str | None:
        if old not in value:
            return None
        return value.replace(old, new)
    return program


def _zfill(width: int) -> Program:
    return lambda value: value.zfill(width)


def _affix(prefix: str, suffix: str) -> Program:
    return lambda value: f"{prefix}{value}{suffix}"


def _title_words(value: str) -> str:
    return " ".join(word.capitalize() for word in value.split())


def _base_programs(examples: list[tuple[str, str]], rich: bool) -> list[tuple[str, Program]]:
    """Unary candidate programs, with parameters inferred from the demos."""
    programs: list[tuple[str, Program]] = [
        ("identity", lambda value: value),
        ("lower", str.lower),
        ("upper", str.upper),
        ("title_words", _title_words),
        ("swap_comma", _swap_comma),
        ("initials", _initials),
    ]
    for separator in _SEPARATORS:
        for index in (0, 1, 2, -1):
            programs.append((f"take({separator!r},{index})", _take(separator, index)))
    for char in _REMOVABLE:
        programs.append((f"remove({char!r})", _remove(char)))
    if rich:
        programs.append(("replace('_',' ')", _replace("_", " ")))
        programs.append(("replace(' ','_')", _replace(" ", "_")))

    # Parameter inference from demonstrations: zero-pad width, common affixes.
    widths = {len(target) for _source, target in examples}
    if len(widths) == 1:
        programs.append((f"zfill({widths.pop()})", _zfill(len(examples[0][1]))))
    sources = [source for source, _target in examples]
    targets = [target for _source, target in examples]
    for source, target in examples[:1]:
        if source and source in target:
            prefix, _mid, suffix = target.partition(source)
            if all(s in t and t == f"{prefix}{s}{suffix}" for s, t in zip(sources, targets)):
                programs.append((f"affix({prefix!r},{suffix!r})", _affix(prefix, suffix)))
    return programs


def _consistent(program: Program, examples: list[tuple[str, str]]) -> bool:
    for source, target in examples:
        result = program(source)
        if result is None or result != target:
            return False
    return True


def induce_string_program(
    examples: list[tuple[str, str]],
    profile: ModelProfile,
) -> tuple[str, Program] | None:
    """Search the latent program space for one consistent with the demos.

    Depth-1 first, then depth-2 compositions when ``icl_strength`` allows.
    Returns (description, program) or ``None``.
    """
    if not examples:
        return None
    rich = profile.icl_strength >= 0.6
    candidates = _base_programs(examples, rich=rich)

    for name, program in candidates:
        if _consistent(program, examples):
            return name, program

    if profile.icl_strength < 0.55:
        return None

    # Depth-2: compose, pruning first stages that fail on the first demo.
    first_source = examples[0][0]
    viable_first = [
        (name, program) for name, program in candidates
        if program(first_source) is not None
    ]
    for name_a, program_a in viable_first:
        intermediate_examples = []
        broken = False
        for source, target in examples:
            mid = program_a(source)
            if mid is None:
                broken = True
                break
            intermediate_examples.append((mid, target))
        if broken:
            continue
        # Second-stage candidates get parameters re-inferred on the
        # intermediate pairs (affixes, pad widths).
        for name_b, program_b in _base_programs(intermediate_examples, rich=rich):
            if name_b == "identity":
                continue
            if _consistent(program_b, intermediate_examples):
                return f"{name_a} | {name_b}", program_b if name_a == "identity" else (
                    lambda value, pa=program_a, pb=program_b: (
                        None if pa(value) is None else pb(pa(value))
                    )
                )
    return None


# ---------------------------------------------------------------------------
# Combined induction
# ---------------------------------------------------------------------------

def induce_transformation(
    examples: list[tuple[str, str]],
    profile: ModelProfile,
    kb: KnowledgeBase,
) -> tuple[str, Program] | None:
    """Best transformation hypothesis for the demos, or ``None``."""
    relation = induce_knowledge_relation(examples, kb, profile.knowledge_floor)
    if relation is not None:
        def knowledge_program(value: str, rel=relation) -> str | None:
            return kb.lookup_one(rel, value.strip(),
                                 min_frequency=profile.knowledge_floor)
        return f"kb:{relation}", knowledge_program

    layout = induce_date_conversion(examples)
    if layout is not None:
        def date_program(value: str, out=layout) -> str | None:
            date = parse_date(value)
            return None if date is None else render_date(date, out)
        return f"date:{layout}", date_program

    return induce_string_program(examples, profile)
