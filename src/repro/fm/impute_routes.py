"""Imputation reasoning: inference routes from row context to missing value.

A prompted FM imputes a missing value by combining functional dependencies
it memorized during pretraining (area code → city, product line → brand)
with format conventions it reads off the demonstrations.  Each *route* is
one such dependency; with demonstrations available, routes are verified
against them before use (in-context route selection), without them the
model falls back to a fixed prior ordering — one of the reasons zero-shot
imputation trails few-shot.
"""

from __future__ import annotations

import re

from repro.fm.parsing import ImputeExampleParsed, parse_serialized_entity
from repro.fm.profiles import ModelProfile
from repro.fm.semantic import SemanticComparator, stable_unit
from repro.knowledge.base import KnowledgeBase
from repro.text.normalize import normalize_value
from repro.text.patterns import is_zip_like
from repro.text.similarity import levenshtein
from repro.text.tokenize import word_tokens

_AREA_CODE_RE = re.compile(r"^\D*(\d{3})")
_WORDISH_RE = re.compile(r"[A-Za-z0-9]+")

#: High-frequency English words a language model prefers when a repair is
#: otherwise ambiguous ("ax" → "at", not "ak").
_FUNCTION_WORDS = frozenset(
    "a an and are as at be by for from in is it of on or the to with".split()
)


class ImputationReasoner:
    """Applies knowledge routes to impute one attribute of one row."""

    #: Prior route order used when no demonstrations can verify routes.
    PRIOR_ORDER = (
        "spell_repair", "phone_to_city", "zip_to_city", "zip_to_state",
        "name_to_city", "brand_in_name", "product_line", "city_to_state",
        "state_to_zip", "city_to_zip", "name_to_brewery", "name_to_artist",
    )

    def __init__(self, profile: ModelProfile, kb: KnowledgeBase,
                 comparator: SemanticComparator,
                 lexicon: frozenset[str] | None = None):
        self.profile = profile
        self.kb = kb
        self.comparator = comparator
        #: Pretraining vocabulary used by the spell-repair route.
        self.lexicon = lexicon or frozenset()

    # -- context access -------------------------------------------------------

    @staticmethod
    def _context_value(context: dict[str, str], *keywords: str) -> str | None:
        """First context value whose attribute name contains a keyword."""
        for attribute, value in context.items():
            folded = attribute.casefold()
            if value and any(keyword in folded for keyword in keywords):
                return value
        return None

    def _extract_area_code(self, phone: str) -> str | None:
        """Pull the leading area code; shallow models sometimes fumble it.

        Area-code extraction is character-level surgery on a formatted
        string — reliably available only to deep models.
        """
        match = _AREA_CODE_RE.match(phone)
        if not match:
            return None
        failure = (1.0 - self.profile.semantic_depth) * 0.5
        if stable_unit(f"areacode|{self.profile.name}|{phone}") < failure:
            return None
        return match.group(1)

    # -- routes ---------------------------------------------------------------

    def _best_lexicon_match(self, token: str) -> str | None:
        """Deterministic closest lexicon word within one edit of ``token``."""
        best: tuple | None = None
        for known in self.lexicon:
            if abs(len(known) - len(token)) > 1:
                continue
            if known and token and known[0] != token[0] and known[-1] != token[-1]:
                continue
            distance = levenshtein(token, known, max_distance=1)
            if distance > 1:
                continue
            rank = (
                distance,
                0 if known and token and known[0] == token[0] else 1,
                0 if known in _FUNCTION_WORDS else 1,  # LM prior: common words win ties
                abs(len(known) - len(token)),
                known,
            )
            if best is None or rank < best[0]:
                best = (rank, known)
        return best[1] if best else None

    def _spell_repair(self, context: dict[str, str], target: str) -> str | None:
        """Fix a corrupted value in place: "corrected city?" given
        "city: bxston".

        Character-level surgery plus functional-dependency cross-checks —
        available only to models deep enough to see characters through
        their tokenization.  Edits are spliced into the original string so
        punctuation and casing outside the bad token survive.
        """
        if not self.profile.can_spot_character_errors or not self.lexicon:
            return None
        target_folded = target.casefold()
        if not target_folded.startswith(("corrected ", "fixed ", "repaired ")):
            return None
        base_attribute = target_folded.split(" ", 1)[1]
        dirty = None
        for attribute, value in context.items():
            if attribute.casefold() == base_attribute and value:
                dirty = value
                break
        if dirty is None:
            return None

        floor = self.profile.knowledge_floor
        city = self._context_value(
            {k: v for k, v in context.items() if k.casefold() != base_attribute},
            "city",
        )

        # FD-aware repair: the row's city pins down states and zip codes.
        if "state" in base_attribute and city:
            state = self.kb.lookup_one(
                "city_to_state", normalize_value(city), min_frequency=floor
            )
            if state:
                return state.lower() if dirty.islower() else state
        if "zip" in base_attribute and city:
            known_city = self.kb.lookup_one(
                "city_to_state", normalize_value(city), min_frequency=floor
            )
            if known_city is not None:
                candidates = [
                    fact.obj
                    for fact in self.kb.lookup(
                        "city_to_zip", normalize_value(city), min_frequency=floor
                    )
                ]
                for candidate in candidates:
                    if levenshtein(candidate, dirty, max_distance=1) <= 1:
                        return candidate

        # Token-level repair, spliced back into the original string.
        repaired = dirty
        changed = False
        for match in list(_WORDISH_RE.finditer(dirty))[::-1]:
            token = match.group(0).casefold()
            if token in self.lexicon or token.isdigit():
                continue
            replacement = self._best_lexicon_match(token)
            if replacement is None:
                continue
            repaired = (
                repaired[: match.start()] + replacement + repaired[match.end():]
            )
            changed = True
        if changed:
            return repaired.casefold() if dirty.islower() else repaired
        return dirty

    def _apply_route(
        self, route: str, context: dict[str, str], target: str
    ) -> str | None:
        floor = self.profile.knowledge_floor
        target_folded = target.casefold()

        if route == "spell_repair":
            return self._spell_repair(context, target)
        if route == "phone_to_city" and "city" in target_folded:
            phone = self._context_value(context, "phone")
            if phone:
                area_code = self._extract_area_code(phone)
                if area_code:
                    return self.kb.lookup_one(
                        "area_code_to_city", area_code, min_frequency=floor
                    )
        elif route == "zip_to_city" and "city" in target_folded:
            zip_value = self._context_value(context, "zip", "postal")
            if zip_value and is_zip_like(zip_value):
                return self.kb.lookup_one("zip_to_city", zip_value, min_frequency=floor)
        elif route == "zip_to_state" and "state" in target_folded:
            zip_value = self._context_value(context, "zip", "postal")
            if zip_value and is_zip_like(zip_value):
                return self.kb.lookup_one("zip_to_state", zip_value, min_frequency=floor)
        elif route == "name_to_city" and "city" in target_folded:
            name = self._context_value(context, "name")
            if name:
                return self.kb.lookup_one(
                    "restaurant_to_city", normalize_value(name), min_frequency=floor
                )
        elif route == "brand_in_name" and target_folded in (
            "manufacturer", "brand", "maker",
        ):
            blob = " ".join(value for value in context.values() if value)
            return self.comparator.infer_brand(blob)
        elif route == "product_line" and target_folded in (
            "manufacturer", "brand", "maker",
        ):
            name = self._context_value(context, "name", "title")
            if name:
                return self._product_line_lookup(name)
        elif route == "city_to_state" and "state" in target_folded:
            city = self._context_value(context, "city")
            if city:
                return self.kb.lookup_one(
                    "city_to_state", normalize_value(city), min_frequency=floor
                )
        elif route == "city_to_zip" and "zip" in target_folded:
            city = self._context_value(context, "city")
            if city:
                return self.kb.lookup_one(
                    "city_to_zip", normalize_value(city), min_frequency=floor
                )
        elif route == "state_to_zip" and "zip" in target_folded:
            # "Address + State → ZipCode" (Table 6's first probe): recall
            # the state's best-attested city and answer with its zip — a
            # plausible, type-correct zip in the right region.
            state = self._context_value(context, "state")
            if state:
                city = self.kb.lookup_one(
                    "state_to_city", state.strip(), min_frequency=floor
                )
                if city:
                    return self.kb.lookup_one(
                        "city_to_zip", city, min_frequency=floor
                    )
        elif route == "name_to_brewery" and (
            "brew" in target_folded or "factory" in target_folded
        ):
            name = self._context_value(context, "name")
            if name:
                return self.kb.lookup_one(
                    "beer_to_brewery", normalize_value(name), min_frequency=floor
                )
        elif route == "name_to_artist" and "artist" in target_folded:
            name = self._context_value(context, "name", "song")
            if name:
                return self.kb.lookup_one(
                    "track_to_artist", normalize_value(name), min_frequency=floor
                )
        return None

    def _product_line_lookup(self, name: str) -> str | None:
        """Match a (possibly dirty) product name against known product lines.

        Exact subject lookup first, then a token-subset fuzzy match for
        deep models.
        """
        floor = self.profile.knowledge_floor
        normalized = normalize_value(name)
        answer = self.kb.lookup_one(
            "product_to_manufacturer", normalized, min_frequency=floor
        )
        if answer is not None:
            return answer
        if self.profile.semantic_depth < 0.6:
            return None
        name_tokens = set(word_tokens(normalized))
        if not name_tokens:
            return None
        best: tuple[float, str] | None = None
        for fact in self.kb.facts_for_relation("product_to_manufacturer"):
            if fact.frequency < floor:
                continue
            subject_tokens = set(word_tokens(normalize_value(fact.subject)))
            if not subject_tokens or not subject_tokens <= name_tokens:
                continue
            score = len(subject_tokens)
            if best is None or score > best[0]:
                best = (score, fact.obj)
        return best[1] if best else None

    # -- fallback guesses -------------------------------------------------------

    def fallback_guess(self, target: str, context_key: str) -> str:
        """Type-consistent guess when no route fires.

        This is the small-model behaviour Table 6 documents: the answer has
        the right *semantic type* but the wrong identity.
        """
        target_folded = target.casefold()
        if "city" in target_folded:
            return self.kb.lookup_one("area_code_to_city", "212") or "new york"
        if "state" in target_folded:
            return "CA"
        if "zip" in target_folded:
            unit = stable_unit(f"zipguess|{self.profile.name}|{context_key}")
            return f"{10000 + int(unit * 89999):05d}"
        if target_folded in ("manufacturer", "brand", "maker"):
            return "Sony"
        if "artist" in target_folded:
            return "unknown artist"
        return ""

    # -- public API ---------------------------------------------------------------

    def verified_routes(self, demonstrations: list[ImputeExampleParsed]) -> list[str]:
        """Routes that reproduce the demonstrations, best-verified first."""
        scores: list[tuple[float, int, str]] = []
        for order, route in enumerate(self.PRIOR_ORDER):
            attempted = 0
            correct = 0
            for demo in demonstrations:
                if demo.answer is None:
                    continue
                context = parse_serialized_entity(demo.context_text) or {}
                candidate = self._apply_route(route, context, demo.attribute)
                if candidate is None:
                    continue
                attempted += 1
                if candidate.casefold().strip() == demo.answer.casefold().strip():
                    correct += 1
            if attempted:
                scores.append((correct / attempted, -order, route))
        scores.sort(reverse=True)
        return [route for score, _order, route in scores if score >= 0.5]

    def infer(
        self,
        context: dict[str, str],
        target: str,
        routes: list[str] | None = None,
    ) -> tuple[str | None, str]:
        """Best candidate value and the route that produced it.

        ``routes`` restricts/reorders the attempts (demonstration-verified
        routes); ``None`` means the zero-shot prior ordering.
        """
        order = routes if routes is not None else list(self.PRIOR_ORDER)
        for route in order:
            candidate = self._apply_route(route, context, target)
            if candidate:
                return candidate, route
        return None, "fallback"
