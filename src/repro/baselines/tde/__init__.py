"""Transform-Data-by-Example (TDE): search-based transformation synthesis.

Given a handful of input/output examples, TDE searches a string DSL for
the smallest consistent program and applies it to new inputs.  Being
purely syntactic, it aces format manipulation and is structurally unable
to perform knowledge transforms (city → state) — the contrast with the
prompted FM that Table 3 reports.
"""

from __future__ import annotations

from repro.baselines.tde.dsl import Operator, base_operators
from repro.baselines.tde.search import Program, synthesize
from repro.datasets.base import TransformationCase, TransformationDataset


class TdeSynthesizer:
    """Per-case synthesis + application."""

    def __init__(self, max_depth: int = 3, beam_width: int = 600):
        self.max_depth = max_depth
        self.beam_width = beam_width

    def synthesize(self, examples: list[tuple[str, str]]) -> Program | None:
        return synthesize(
            list(examples), max_depth=self.max_depth, beam_width=self.beam_width
        )

    def run_case(self, case: TransformationCase) -> tuple[int, int]:
        """(hits, total) on the case's held-out tests."""
        program = self.synthesize(list(case.examples))
        if program is None:
            return 0, len(case.tests)
        hits = sum(
            1 for source, target in case.tests if program(source) == target
        )
        return hits, len(case.tests)

    def evaluate(self, dataset: TransformationDataset) -> float:
        """Micro-averaged accuracy over all cases' tests."""
        total_hits = 0
        total = 0
        for case in dataset.cases:
            hits, n = self.run_case(case)
            total_hits += hits
            total += n
        return total_hits / total if total else 0.0


__all__ = ["Operator", "Program", "TdeSynthesizer", "base_operators", "synthesize"]
