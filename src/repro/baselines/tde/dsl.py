"""TDE's string-transformation DSL.

Operators are unary string functions returning ``None`` when inapplicable.
Parameters (separators, indices, affixes, replacement pairs, pad widths,
prefix lengths) are *inferred from the demonstration pairs*, which is what
lets a breadth-first search stay small while covering a large program
space — the essence of transform-by-example engines.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass

Transform = Callable[[str], "str | None"]

SEPARATORS = (" ", "-", "_", "/", ".", ",", ", ", ": ", "|", "(", ")", "//")
REMOVABLE = ("$", ",", "(", ")", " ", "-", "_", '"', "'", "%", "#")


@dataclass(frozen=True)
class Operator:
    """A named DSL operator."""

    name: str
    fn: Transform

    def __call__(self, value: str) -> str | None:
        return self.fn(value)


def _split_take(separator: str, index: int) -> Transform:
    def fn(value: str) -> str | None:
        parts = value.split(separator)
        if len(parts) < 2:
            return None
        try:
            return parts[index]
        except IndexError:
            return None
    return fn


def _remove(char: str) -> Transform:
    return lambda value: value.replace(char, "") if char in value else None


def _replace(old: str, new: str) -> Transform:
    return lambda value: value.replace(old, new) if old in value else None


def _swap(separator: str) -> Transform:
    def fn(value: str) -> str | None:
        if separator not in value:
            return None
        head, _sep, tail = value.partition(separator)
        return f"{tail} {head}"
    return fn


def _zfill(width: int) -> Transform:
    return lambda value: value.zfill(width)


def _affix(prefix: str, suffix: str) -> Transform:
    return lambda value: f"{prefix}{value}{suffix}"


def _prefix_chars(n: int) -> Transform:
    return lambda value: value[:n] if len(value) >= n else None


def _suffix_chars(n: int) -> Transform:
    return lambda value: value[-n:] if len(value) >= n else None


def _extract(pattern: re.Pattern) -> Transform:
    def fn(value: str) -> str | None:
        match = pattern.search(value)
        return match.group(0) if match else None
    return fn


def _initials(value: str) -> str | None:
    words = value.split()
    if len(words) < 2:
        return None
    return "".join(word[0] + "." for word in words)


def _title_words(value: str) -> str:
    return " ".join(word.capitalize() for word in value.split())


_DIGITS_RE = re.compile(r"\d+")
_ALPHA_RE = re.compile(r"[A-Za-z]+")


def _inferred_replacements(examples: list[tuple[str, str]]) -> list[tuple[str, str]]:
    """Candidate (old, new) replacement pairs suggested by the demos.

    TDE mines its web-crawled program corpus; we approximate by diffing
    the character multisets of inputs and outputs: characters/bigrams that
    vanish suggest removals, and the bigram to the output's advantage at a
    fixed context suggests substitutions like ") " → "-".
    """
    from collections import Counter

    candidates: set[tuple[str, str]] = set()
    for source, target in examples[:2]:
        source_counts, target_counts = Counter(source), Counter(target)
        # Count-aware diff: a character whose multiplicity grows was gained
        # even if it already appeared ("415 775-7036" → "415-775-7036").
        lost = {ch for ch in source_counts
                if source_counts[ch] > target_counts.get(ch, 0)}
        gained = {ch for ch in target_counts
                  if target_counts[ch] > source_counts.get(ch, 0)}
        for old in lost:
            candidates.add((old, ""))
            for new in gained:
                candidates.add((old, new))
        # Two-character contexts around each lost character.
        for i, ch in enumerate(source):
            if ch in lost:
                bigram = source[i : i + 2]
                for new in gained | {""}:
                    if len(bigram) == 2:
                        candidates.add((bigram, new))
    return sorted(candidates)[:40]


def base_operators(examples: list[tuple[str, str]]) -> list[Operator]:
    """The full candidate operator set, parameterized by the demos."""
    operators: list[Operator] = [
        Operator("identity", lambda value: value),
        Operator("lower", str.lower),
        Operator("upper", str.upper),
        Operator("title_words", _title_words),
        Operator("strip", str.strip),
        Operator("extract_digits", _extract(_DIGITS_RE)),
        Operator("extract_alpha", _extract(_ALPHA_RE)),
    ]
    for separator in SEPARATORS:
        operators.append(Operator(f"swap({separator!r})", _swap(separator)))
        for index in (0, 1, 2, 3, -1, -2):
            operators.append(
                Operator(f"take({separator!r},{index})", _split_take(separator, index))
            )
    for char in REMOVABLE:
        operators.append(Operator(f"remove({char!r})", _remove(char)))
    for old, new in _inferred_replacements(examples):
        operators.append(Operator(f"replace({old!r},{new!r})", _replace(old, new)))

    target_lengths = {len(target) for _source, target in examples}
    if len(target_lengths) == 1:
        width = target_lengths.pop()
        operators.append(Operator(f"zfill({width})", _zfill(width)))
        operators.append(Operator(f"prefix({width})", _prefix_chars(width)))
        operators.append(Operator(f"suffix({width})", _suffix_chars(width)))

    # Affix inference: constant prefix/suffix around the input.
    source0, target0 = examples[0]
    if source0 and source0 in target0:
        prefix, _mid, suffix = target0.partition(source0)
        if all(t == f"{prefix}{s}{suffix}" for s, t in examples):
            operators.append(Operator(f"affix({prefix!r},{suffix!r})", _affix(prefix, suffix)))
    return operators
