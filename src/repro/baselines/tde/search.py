"""Breadth-first program search over the TDE DSL."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tde.dsl import Operator, base_operators


@dataclass
class Program:
    """A pipeline of DSL operators."""

    operators: tuple[Operator, ...]

    @property
    def size(self) -> int:
        return len(self.operators)

    @property
    def description(self) -> str:
        return " | ".join(op.name for op in self.operators) or "identity"

    def __call__(self, value: str) -> str | None:
        result: str | None = value
        for operator in self.operators:
            if result is None:
                return None
            result = operator(result)
        return result


def _consistent(program: Program, examples: list[tuple[str, str]]) -> bool:
    return all(program(source) == target for source, target in examples)


def synthesize(
    examples: list[tuple[str, str]],
    max_depth: int = 3,
    beam_width: int = 600,
) -> Program | None:
    """Smallest DSL program consistent with every example, else ``None``.

    Classic TBE search: expand programs breadth-first; prune branches
    whose intermediate outputs are no longer reachable (None on any
    example); keep the frontier bounded by ``beam_width`` states with
    distinct intermediate signatures.
    """
    if not examples:
        return None
    operators = base_operators(examples)
    sources = tuple(source for source, _target in examples)

    # Frontier entries: (intermediate values, program ops so far).
    frontier: list[tuple[tuple[str, ...], tuple[Operator, ...]]] = [(sources, ())]
    seen_signatures = {sources}

    for _depth in range(max_depth):
        next_frontier: list[tuple[tuple[str, ...], tuple[Operator, ...]]] = []
        for values, ops in frontier:
            for operator in operators:
                outputs = []
                dead = False
                for value in values:
                    result = operator(value)
                    if result is None:
                        dead = True
                        break
                    outputs.append(result)
                if dead:
                    continue
                signature = tuple(outputs)
                program = Program(operators=ops + (operator,))
                if all(
                    output == target
                    for output, (_source, target) in zip(outputs, examples)
                ):
                    return program
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                next_frontier.append((signature, program.operators))
                if len(next_frontier) >= beam_width:
                    break
            if len(next_frontier) >= beam_width:
                break
        frontier = next_frontier
        if not frontier:
            break
    return None
