"""SMAT-style supervised schema matching.

The real SMAT trains an attention-over-attention BiLSTM on labeled
attribute pairs.  The analogue: engineered features over names,
descriptions and sample values with a logistic head, trained on the train
split.  Like the real system it learns lexical-overlap patterns well and
struggles with correspondences that require external domain knowledge —
the gap the prompted FM closes in Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SchemaMatchingDataset, SchemaPair
from repro.knowledge.medical import SchemaAttribute
from repro.ml.logistic import LogisticRegression
from repro.text.patterns import infer_semantic_type
from repro.text.similarity import jaccard, jaro_winkler, monge_elkan
from repro.text.tokenize import char_ngrams, word_tokens


def _name_tokens(attribute: SchemaAttribute) -> list[str]:
    return [token for token in attribute.name.casefold().split("_") if token]


def pair_features(pair: SchemaPair) -> np.ndarray:
    """Feature vector for one (source attribute, target attribute) pair."""
    left, right = pair.left, pair.right
    tokens_left, tokens_right = _name_tokens(left), _name_tokens(right)
    name_jaccard = jaccard(tokens_left, tokens_right)
    name_elkan = monge_elkan(tokens_left, tokens_right) if tokens_left and tokens_right else 0.0
    name_jw = jaro_winkler(left.name.casefold(), right.name.casefold())
    gram_jaccard = jaccard(
        char_ngrams(left.name.casefold(), 3), char_ngrams(right.name.casefold(), 3)
    )
    desc_left = word_tokens(left.description)
    desc_right = word_tokens(right.description)
    desc_jaccard = jaccard(desc_left, desc_right)
    desc_elkan = monge_elkan(desc_left[:12], desc_right[:12]) if desc_left and desc_right else 0.0
    table_jw = jaro_winkler(left.table.casefold(), right.table.casefold())
    sample_type = float(
        bool(left.sample_values)
        and bool(right.sample_values)
        and infer_semantic_type(left.sample_values[0])
        == infer_semantic_type(right.sample_values[0])
    )
    sample_equal = float(
        bool(set(v.casefold() for v in left.sample_values)
             & set(v.casefold() for v in right.sample_values))
    )
    return np.array([
        name_jaccard, name_elkan, name_jw, gram_jaccard,
        desc_jaccard, desc_elkan, table_jw, sample_type, sample_equal, 1.0,
    ])


class SmatMatcher:
    """Supervised attribute-correspondence classifier."""

    def __init__(self):
        self.model = LogisticRegression(epochs=400)
        self.fitted = False

    def fit(self, pairs: list[SchemaPair]) -> "SmatMatcher":
        if not pairs:
            raise ValueError("cannot fit on an empty pair list")
        features = np.vstack([pair_features(pair) for pair in pairs])
        labels = np.array([float(pair.label) for pair in pairs])
        self.model.fit(features, labels)
        self.fitted = True
        return self

    @classmethod
    def for_dataset(cls, dataset: SchemaMatchingDataset) -> "SmatMatcher":
        return cls().fit(dataset.train)

    def predict(self, pair: SchemaPair) -> bool:
        if not self.fitted:
            raise RuntimeError("SmatMatcher used before fit()")
        return bool(self.model.predict(pair_features(pair).reshape(1, -1))[0])

    def predict_many(self, pairs: list[SchemaPair]) -> list[bool]:
        if not self.fitted:
            raise RuntimeError("SmatMatcher used before fit()")
        features = np.vstack([pair_features(pair) for pair in pairs])
        return [bool(value) for value in self.model.predict(features)]
