"""Magellan-style entity matching: engineered features + random forest.

Faithful to py_entitymatching's recipe: a vector of per-attribute string
similarities (word Jaccard, 3-gram Jaccard, edit ratio, Monge-Elkan,
overlap, numeric difference, null indicators) fed to a bagged tree
ensemble.  Fully supervised on the train split — strong with plentiful
labels, weak on tiny training sets like Beer (exactly the pattern in the
paper's Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import EntityMatchingDataset, MatchingPair
from repro.ml.forest import StumpForest
from repro.text.normalize import normalize_value
from repro.text.patterns import is_numeric
from repro.text.similarity import (
    jaccard,
    levenshtein_ratio,
    monge_elkan,
    overlap_coefficient,
)
from repro.text.tokenize import char_ngrams, word_tokens

#: Features produced per attribute (kept in one place for width math).
FEATURES_PER_ATTRIBUTE = 7


def _attribute_features(left: str | None, right: str | None) -> list[float]:
    """Similarity feature block for one attribute pair."""
    both_null = 1.0 if not left and not right else 0.0
    one_null = 1.0 if bool(left) != bool(right) else 0.0
    if not left or not right:
        return [0.0, 0.0, 0.0, 0.0, 0.0, both_null, one_null]
    norm_left, norm_right = normalize_value(left), normalize_value(right)
    tokens_left, tokens_right = word_tokens(norm_left), word_tokens(norm_right)
    word_jaccard = jaccard(tokens_left, tokens_right)
    gram_jaccard = jaccard(char_ngrams(norm_left, 3), char_ngrams(norm_right, 3))
    edit_ratio = levenshtein_ratio(norm_left[:64], norm_right[:64])
    elkan = monge_elkan(tokens_left[:12], tokens_right[:12])
    if is_numeric(norm_left.replace(" ", "")) and is_numeric(norm_right.replace(" ", "")):
        a, b = float(norm_left.replace(" ", "")), float(norm_right.replace(" ", ""))
        scale = max(abs(a), abs(b), 1e-9)
        numeric = max(0.0, 1.0 - abs(a - b) / scale)
    else:
        numeric = overlap_coefficient(tokens_left, tokens_right)
    return [word_jaccard, gram_jaccard, edit_ratio, elkan, numeric, both_null, one_null]


class MagellanMatcher:
    """Feature-based supervised matcher over a fixed attribute schema."""

    def __init__(self, attributes: list[str], n_trees: int = 20,
                 max_depth: int = 2, seed: int = 0):
        if not attributes:
            raise ValueError("MagellanMatcher needs at least one attribute")
        self.attributes = list(attributes)
        self.model = StumpForest(n_trees=n_trees, max_depth=max_depth, seed=seed)
        self.fitted = False

    @classmethod
    def for_dataset(cls, dataset: EntityMatchingDataset, **kwargs) -> "MagellanMatcher":
        return cls(attributes=dataset.attributes, **kwargs)

    def features(self, pair: MatchingPair) -> np.ndarray:
        blocks: list[float] = []
        for attribute in self.attributes:
            blocks.extend(
                _attribute_features(pair.left.get(attribute), pair.right.get(attribute))
            )
        return np.array(blocks)

    def fit(self, pairs: list[MatchingPair]) -> "MagellanMatcher":
        if not pairs:
            raise ValueError("cannot fit on an empty pair list")
        features = np.vstack([self.features(pair) for pair in pairs])
        labels = np.array([float(pair.label) for pair in pairs])
        self.model.fit(features, labels)
        self.fitted = True
        return self

    def predict(self, pair: MatchingPair) -> bool:
        if not self.fitted:
            raise RuntimeError("MagellanMatcher used before fit()")
        return bool(self.model.predict(self.features(pair).reshape(1, -1))[0])

    def predict_many(self, pairs: list[MatchingPair]) -> list[bool]:
        if not self.fitted:
            raise RuntimeError("MagellanMatcher used before fit()")
        features = np.vstack([self.features(pair) for pair in pairs])
        return [bool(value) for value in self.model.predict(features)]
