"""HoloClean-style statistical repair.

The real HoloClean compiles denial constraints, value co-occurrence and
frequency statistics into a factor graph and infers marginal distributions
over cell values.  This implementation keeps the statistical core:

* approximate functional-dependency discovery over the observed rows,
* error detection = FD-violation + low-frequency outlier signals,
* imputation = pseudo-likelihood over attribute co-occurrence
  (each candidate value is scored by how well the other cells predict it).

Being purely dataset-statistical, it shares the real system's failure
mode the paper leans on: it cannot invent values it has never seen and has
no external knowledge — hence low imputation accuracy on Restaurant/Buy.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.datasets.base import ErrorExample, ImputationExample
from repro.datasets.table import Row
from repro.text.normalize import normalize_value
from repro.text.tokenize import word_tokens


def _value_tokens(value: str) -> list[str]:
    tokens = word_tokens(normalize_value(value))
    pieces = []
    for token in tokens:
        for piece in token.replace("/", "-").split("-"):
            if piece and piece != token:
                pieces.append(piece)
    return tokens + pieces


class HoloClean:
    """Statistics learned from a collection of (possibly dirty) rows."""

    def __init__(self, fd_confidence: float = 0.95, rare_threshold: int = 1):
        self.fd_confidence = fd_confidence
        self.rare_threshold = rare_threshold
        self.attributes: list[str] = []
        self.value_counts: dict[str, Counter] = defaultdict(Counter)
        self.cooccurrence: dict[tuple[str, str], dict[str, Counter]] = {}
        self.fds: list[tuple[str, str]] = []
        self.n_rows = 0
        self.fitted = False
        self._rows: list[Row] = []
        self._token_cooccurrence: dict[str, Counter] | None = None

    # -- statistics -------------------------------------------------------------

    def fit(self, rows: list[Row]) -> "HoloClean":
        if not rows:
            raise ValueError("cannot fit on an empty row list")
        # Deduplicate: callers often pass one row per labeled *cell*, which
        # would inflate every statistic by the attribute count.
        seen: set[tuple] = set()
        unique_rows: list[Row] = []
        for row in rows:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                unique_rows.append(row)
        rows = unique_rows
        self.attributes = list(rows[0])
        self.n_rows = len(rows)
        for row in rows:
            for attribute in self.attributes:
                value = row.get(attribute)
                if value is not None:
                    self.value_counts[attribute][value.casefold()] += 1
        self._collect_cooccurrence(rows)
        self._discover_fds(rows)
        self._rows = rows
        self._token_cooccurrence = None
        self.fitted = True
        return self

    def _collect_token_cooccurrence(self) -> None:
        """value → Counter of context tokens seen alongside it (any attr)."""
        table: dict[str, Counter] = defaultdict(Counter)
        for row in self._rows:
            tokens = set()
            for value in row.values():
                if value:
                    tokens.update(_value_tokens(value))
            for value in row.values():
                if value:
                    table[value.casefold()].update(tokens)
        self._token_cooccurrence = table

    def _collect_cooccurrence(self, rows: list[Row]) -> None:
        for source in self.attributes:
            for target in self.attributes:
                if source == target:
                    continue
                table: dict[str, Counter] = defaultdict(Counter)
                for row in rows:
                    value_s, value_t = row.get(source), row.get(target)
                    if value_s is not None and value_t is not None:
                        table[value_s.casefold()][value_t.casefold()] += 1
                self.cooccurrence[(source, target)] = table

    def _discover_fds(self, rows: list[Row]) -> None:
        """Approximate FDs A → B: the dominant B per A covers ≥ confidence."""
        self.fds = []
        for source in self.attributes:
            for target in self.attributes:
                if source == target:
                    continue
                table = self.cooccurrence[(source, target)]
                if not table:
                    continue
                supported = 0
                consistent = 0
                distinct_sources = 0
                for counts in table.values():
                    total = sum(counts.values())
                    if total < 2:
                        continue
                    distinct_sources += 1
                    supported += total
                    consistent += counts.most_common(1)[0][1]
                if distinct_sources >= 2 and supported >= 6:
                    if consistent / supported >= self.fd_confidence:
                        self.fds.append((source, target))

    # -- error detection ------------------------------------------------------------

    def detect(self, example: ErrorExample) -> bool:
        """Violation- and frequency-based error verdict for one cell."""
        if not self.fitted:
            raise RuntimeError("HoloClean used before fit()")
        attribute = example.attribute
        value = example.row.get(attribute)
        if value is None:
            return False
        folded = value.casefold()
        # FD violations: some determinant attribute disagrees.
        for source, target in self.fds:
            if target != attribute:
                continue
            determinant = example.row.get(source)
            if determinant is None:
                continue
            counts = self.cooccurrence[(source, target)].get(determinant.casefold())
            if counts and sum(counts.values()) >= 2:
                dominant = counts.most_common(1)[0][0]
                if folded != dominant:
                    return True
        # Frequency outlier: the value is (near-)unique for this attribute.
        frequency = self.value_counts[attribute][folded]
        distinct = len(self.value_counts[attribute])
        if distinct and distinct < 0.5 * self.n_rows:
            # Attribute looks categorical; rare values are suspicious.
            return frequency <= self.rare_threshold
        return False

    # -- imputation ---------------------------------------------------------------

    def impute(self, example: ImputationExample) -> str:
        """Pseudo-likelihood repair: best co-occurring seen value.

        Value-level co-occurrence dominates; token-level co-occurrence
        (collected lazily from the fitted rows) contributes weakly — the
        real HoloClean featurizes context but has no language understanding,
        which is why the paper reports it far below the learned imputers.
        """
        if not self.fitted:
            raise RuntimeError("HoloClean used before fit()")
        target = example.attribute
        candidates = self.value_counts[target]
        if not candidates:
            return ""
        if self._token_cooccurrence is None:
            self._collect_token_cooccurrence()
        context_tokens = set()
        for attribute, value in example.row.items():
            if attribute != target and value:
                context_tokens.update(_value_tokens(value))
        scores: Counter = Counter()
        for candidate, prior in candidates.items():
            score = float(prior) / self.n_rows
            for attribute in self.attributes:
                if attribute == target:
                    continue
                value = example.row.get(attribute)
                if value is None:
                    continue
                counts = self.cooccurrence[(attribute, target)].get(value.casefold())
                if counts:
                    score += counts[candidate] / sum(counts.values())
            token_hits = self._token_cooccurrence.get(candidate, Counter())
            if token_hits:
                # Featurized context contributes weakly: HoloClean's factor
                # graph has no language model behind it.
                total = sum(token_hits.values())
                score += 0.05 * sum(
                    token_hits[token] for token in context_tokens
                ) / total
            scores[candidate] = score
        return scores.most_common(1)[0][0]
