"""Baseline systems the paper compares against.

Real (simplified, dependency-free) implementations of each comparator:

* :class:`MagellanMatcher` — classic similarity-feature EM with a random
  forest (Konda et al., VLDB 2016).
* :class:`DittoMatcher` — the "finetuned PLM" EM baseline: character-gram
  TF-IDF representations with a trained logistic head and Ditto's
  augmentation/summarization tricks (Li et al., VLDB 2020).
* :class:`HoloClean` — statistical repair: denial-constraint violations +
  pseudo-likelihood inference over co-occurrence statistics (Rekatsinas et
  al., VLDB 2017).  Used both for error detection and imputation.
* :class:`HoloDetect` — few-shot error detection with noisy-channel data
  augmentation (Heidari et al., SIGMOD 2019).
* :class:`ImpImputer` — the "finetuned RoBERTa" imputation baseline:
  contextual naive Bayes over serialized rows (Mei et al., ICDE 2021).
* :class:`SmatMatcher` — supervised schema matching on name/description/
  instance features (Zhang et al., ADBIS 2021).
* :mod:`repro.baselines.tde` — Transform-Data-by-Example: breadth-first
  program synthesis over a string-transformation DSL (He et al., VLDB
  2018).
"""

from repro.baselines.magellan import MagellanMatcher
from repro.baselines.ditto import DittoMatcher
from repro.baselines.holoclean import HoloClean
from repro.baselines.holodetect import HoloDetect
from repro.baselines.imp import ImpImputer
from repro.baselines.smat import SmatMatcher
from repro.baselines.tde import TdeSynthesizer

__all__ = [
    "DittoMatcher",
    "HoloClean",
    "HoloDetect",
    "ImpImputer",
    "MagellanMatcher",
    "SmatMatcher",
    "TdeSynthesizer",
]
