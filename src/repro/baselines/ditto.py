"""Ditto-style entity matching: PLM representations, fully finetuned.

The real Ditto serializes pairs into one sequence, feeds them to BERT, and
finetunes end-to-end, with three tricks: domain knowledge injection,
summarization (drop uninformative tokens from long values) and data
augmentation.  This stand-in keeps the recipe with a dependency-free
representation: hashed character-trigram and word features of the pair
*difference and intersection* (what cross-attention learns to compare),
plus per-attribute similarity scalars, trained with logistic regression on
the full train split with swap augmentation.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.datasets.base import EntityMatchingDataset, MatchingPair
from repro.ml.features import FeatureHasher
from repro.ml.logistic import LogisticRegression
from repro.baselines.magellan import _attribute_features
from repro.text.normalize import normalize_value
from repro.text.patterns import is_identifier_token
from repro.text.tokenize import char_ngrams, word_tokens

#: Summarization cap: tokens kept per value (Ditto's max_len analogue).
SUMMARIZE_TOKENS = 24


class DittoMatcher:
    """Supervised pair classifier over hashed PLM-ish features."""

    #: Engineered-feature amplification: cross-attention concentrates on
    #: the aligned-similarity signal; a flat LR needs the block scaled up
    #: to balance against the wide hashed interaction vector.
    ENGINEERED_SCALE = 3.0

    def __init__(self, attributes: list[str], dim: int = 256, seed: int = 0,
                 augment: bool = True):
        if not attributes:
            raise ValueError("DittoMatcher needs at least one attribute")
        self.attributes = list(attributes)
        self.hasher = FeatureHasher(dim=dim, salt="ditto")
        self.model = LogisticRegression(l2=5e-4, epochs=600)
        self.augment = augment
        self.seed = seed
        self.fitted = False

    @classmethod
    def for_dataset(cls, dataset: EntityMatchingDataset, **kwargs) -> "DittoMatcher":
        return cls(attributes=dataset.attributes, **kwargs)

    # -- representation -----------------------------------------------------

    @staticmethod
    def _value_tokens(value: str | None) -> list[str]:
        if not value:
            return []
        normalized = normalize_value(value)
        words = word_tokens(normalized)[:SUMMARIZE_TOKENS]
        grams = char_ngrams(" ".join(words), 3)
        return words + grams

    @staticmethod
    def _identifier_block(left_value: str | None, right_value: str | None) -> list[float]:
        """Ditto's domain-knowledge injection: identifiers are highlighted.

        Model numbers and version strings are extracted and compared
        exactly; a shared identifier is strong match evidence and a
        conflicting one strong non-match evidence — the signal that keeps
        the real Ditto strong on jargon-dense product data.
        """
        ids_left = {
            token for token in word_tokens(normalize_value(left_value or ""))
            if is_identifier_token(token)
        }
        ids_right = {
            token for token in word_tokens(normalize_value(right_value or ""))
            if is_identifier_token(token)
        }
        if not ids_left or not ids_right:
            return [0.0, 0.0, 0.0]
        shared = len(ids_left & ids_right)
        conflicting = min(len(ids_left - ids_right), len(ids_right - ids_left))
        return [min(shared, 3) / 3.0, min(conflicting, 3) / 3.0, 1.0]

    def features(self, pair: MatchingPair) -> np.ndarray:
        interaction_tokens: list[str] = []
        similarity_block: list[float] = []
        for attribute in self.attributes:
            left_value = pair.left.get(attribute)
            right_value = pair.right.get(attribute)
            left = Counter(self._value_tokens(left_value))
            right = Counter(self._value_tokens(right_value))
            for token in set(left) | set(right):
                shared = min(left[token], right[token])
                differing = abs(left[token] - right[token])
                interaction_tokens.extend([f"{attribute}|s|{token}"] * shared)
                interaction_tokens.extend([f"{attribute}|d|{token}"] * differing)
            similarity_block.extend(_attribute_features(left_value, right_value))
            similarity_block.extend(self._identifier_block(left_value, right_value))
        hashed = self.hasher.transform_one(interaction_tokens)
        engineered = np.array(similarity_block) * self.ENGINEERED_SCALE
        return np.concatenate([hashed, engineered])

    # -- training -------------------------------------------------------------

    def _augmented(self, pairs: list[MatchingPair]) -> list[MatchingPair]:
        """Ditto's augmentation, cheapest variant: swap pair sides."""
        swapped = [
            MatchingPair(left=pair.right, right=pair.left, label=pair.label)
            for pair in pairs
        ]
        return list(pairs) + swapped

    def fit(self, pairs: list[MatchingPair]) -> "DittoMatcher":
        if not pairs:
            raise ValueError("cannot fit on an empty pair list")
        training = self._augmented(pairs) if self.augment else list(pairs)
        features = np.vstack([self.features(pair) for pair in training])
        labels = np.array([float(pair.label) for pair in training])
        self.model.fit(features, labels)
        self.fitted = True
        return self

    def predict(self, pair: MatchingPair) -> bool:
        if not self.fitted:
            raise RuntimeError("DittoMatcher used before fit()")
        return bool(self.model.predict(self.features(pair).reshape(1, -1))[0])

    def predict_many(self, pairs: list[MatchingPair]) -> list[bool]:
        if not self.fitted:
            raise RuntimeError("DittoMatcher used before fit()")
        features = np.vstack([self.features(pair) for pair in pairs])
        return [bool(value) for value in self.model.predict(features)]
