"""IMP-style imputation: a finetuned language model over serialized rows.

The real IMP finetunes RoBERTa to generate the missing value from the
serialized row.  The dependency-free analogue: a multinomial naive Bayes
over subword-ish context tokens (attribute-prefixed words, plus the
punctuation-split pieces a BPE tokenizer would expose — so a phone number
contributes its area code as a feature).  Like the real system, it can
only produce values present in its training data, which is the failure
mode the paper contrasts with the FM's knowledge-driven imputation.
"""

from __future__ import annotations

from repro.datasets.base import ImputationDataset, ImputationExample
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.text.normalize import normalize_value
from repro.text.tokenize import word_tokens


def context_tokens(row: dict, skip: str) -> list[str]:
    """Attribute-prefixed token features of a row context."""
    tokens: list[str] = []
    for attribute, value in row.items():
        if attribute == skip or not value:
            continue
        for token in word_tokens(normalize_value(value)):
            tokens.append(f"{attribute}={token}")
            for piece in token.replace("/", "-").split("-"):
                if piece and piece != token:
                    tokens.append(f"{attribute}={piece}")
    return tokens


def _context_text(row: dict, skip: str) -> str:
    return " ".join(
        normalize_value(value)
        for attribute, value in row.items()
        if attribute != skip and value
    )


class ImpImputer:
    """Contextual imputer: learned copy mechanism + complement naive Bayes.

    A finetuned LM learns two behaviours on imputation data: *copy* the
    answer when it is mentioned in the row (the dominant pattern on Buy,
    where product names carry the manufacturer), and *associate* context
    tokens with answers otherwise.  We reproduce both: copying fires only
    when training shows it is reliable for the dataset.
    """

    def __init__(self, target_attribute: str, alpha: float = 0.1,
                 copy_reliability_threshold: float = 0.5):
        self.target_attribute = target_attribute
        self.model = MultinomialNaiveBayes(alpha=alpha, complement=True,
                                           prior_weight=0.2)
        self.copy_reliability_threshold = copy_reliability_threshold
        self.copy_reliability_ = 0.0
        self.answer_vocabulary_: set[str] = set()
        self.fitted = False

    @classmethod
    def for_dataset(cls, dataset: ImputationDataset, **kwargs) -> "ImpImputer":
        return cls(target_attribute=dataset.target_attribute, **kwargs)

    def fit(self, examples: list[ImputationExample]) -> "ImpImputer":
        if not examples:
            raise ValueError("cannot fit on an empty example list")
        copy_hits = 0
        for example in examples:
            tokens = context_tokens(example.row, skip=self.target_attribute)
            answer = normalize_value(example.answer)
            self.model.partial_fit(tokens, example.answer.casefold())
            self.answer_vocabulary_.add(answer)
            context = _context_text(example.row, self.target_attribute)
            if answer and f" {answer} " in f" {context} ":
                copy_hits += 1
        self.copy_reliability_ = copy_hits / len(examples)
        self.fitted = True
        return self

    def _copy_candidate(self, example: ImputationExample) -> str | None:
        """Longest known answer mentioned verbatim in the row context."""
        context = f" {_context_text(example.row, self.target_attribute)} "
        best: str | None = None
        for answer in self.answer_vocabulary_:
            if answer and f" {answer} " in context:
                if best is None or len(answer) > len(best):
                    best = answer
        return best

    def predict(self, example: ImputationExample) -> str:
        if not self.fitted:
            raise RuntimeError("ImpImputer used before fit()")
        if self.copy_reliability_ >= self.copy_reliability_threshold:
            candidate = self._copy_candidate(example)
            if candidate is not None:
                return candidate
        tokens = context_tokens(example.row, skip=self.target_attribute)
        return str(self.model.predict(tokens))

    def predict_many(self, examples: list[ImputationExample]) -> list[str]:
        return [self.predict(example) for example in examples]
