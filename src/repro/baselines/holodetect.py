"""HoloDetect-style few-shot error detection.

The real HoloDetect learns a noisy channel from a handful of labeled
errors, augments the training set by pushing clean values through that
channel, and trains a cell classifier over representation features.  The
same three stages here:

1. **Channel learning** — labeled errors are diffed against their
   attribute's clean vocabulary to find the character-level corruption
   (e.g. "some character became 'x'").
2. **Augmentation** — clean training cells are corrupted with the learned
   channel to mint extra positives (the trick that makes 100 labels
   enough).
3. **Classification** — logistic regression over cell features: value
   frequency within the dataset, pattern conformity, character
   plausibility, numeric range, and cross-attribute domain membership.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict

import numpy as np

from repro.datasets.base import ErrorDetectionDataset, ErrorExample
from repro.ml.logistic import LogisticRegression
from repro.text.patterns import is_numeric, value_pattern


def _char_counts(values: list[str]) -> Counter:
    counts: Counter = Counter()
    for value in values:
        counts.update(value)
    return counts


class HoloDetect:
    """Few-shot ED with noisy-channel augmentation."""

    def __init__(self, n_augment: int = 300, seed: int = 0):
        self.n_augment = n_augment
        self.seed = seed
        self.model = LogisticRegression(epochs=400)
        self.attribute_vocab: dict[str, Counter] = defaultdict(Counter)
        self.attribute_patterns: dict[str, Counter] = defaultdict(Counter)
        self.char_frequency: Counter = Counter()
        self.channel_chars: Counter = Counter()
        self.channel_types: Counter = Counter()
        self.fitted = False

    # -- statistics from the dataset (unlabeled rows are fair game) ---------

    def _collect(self, dataset: ErrorDetectionDataset) -> None:
        rows = dataset.clean_rows or [example.row for example in dataset.train]
        for row in rows:
            for attribute, value in row.items():
                if value is None:
                    continue
                folded = value.casefold()
                self.attribute_vocab[attribute][folded] += 1
                self.attribute_patterns[attribute][value_pattern(folded)] += 1
                self.char_frequency.update(folded)

    # -- noisy channel --------------------------------------------------------

    def _learn_channel(self, examples: list[ErrorExample]) -> None:
        """The corruption processes the labeled errors exhibit.

        Three channel types, tallied per labeled error: character
        substitution (Hospital-style), whole-value domain swap (the dirty
        value belongs to another attribute's vocabulary), and numeric
        out-of-range replacement.
        """
        for example in examples:
            if not example.label or example.clean_value is None:
                continue
            dirty = (example.row.get(example.attribute) or "").casefold()
            clean = example.clean_value.casefold()
            if is_numeric(dirty) and is_numeric(clean) and dirty != clean:
                if abs(float(dirty) - float(clean)) > 25:
                    self.channel_types["numeric"] += 1
                    continue
            swapped = any(
                other != example.attribute and vocab[dirty] > 0
                for other, vocab in self.attribute_vocab.items()
            )
            if swapped and len(dirty) != len(clean):
                self.channel_types["swap"] += 1
                continue
            if len(dirty) == len(clean):
                self.channel_types["char"] += 1
                for dirty_char, clean_char in zip(dirty, clean):
                    if dirty_char != clean_char:
                        self.channel_chars[dirty_char] += 1
            else:
                self.channel_types["swap" if swapped else "char"] += 1

    def _corrupt(self, value: str, attribute: str, rng: random.Random) -> str | None:
        """Apply one learned channel to a clean value."""
        total = sum(self.channel_types.values())
        if total == 0:
            return None
        draw = rng.uniform(0, total)
        threshold = self.channel_types["char"]
        if draw < threshold and self.channel_chars and len(value) >= 2:
            position = rng.randrange(len(value))
            injected = rng.choice(list(self.channel_chars))
            dirty = value[:position] + injected + value[position + 1 :]
            return dirty if dirty != value else None
        threshold += self.channel_types["swap"]
        if draw < threshold:
            others = [
                v for other, vocab in self.attribute_vocab.items()
                if other != attribute
                for v in vocab
                if not is_numeric(v)
            ]
            if others:
                return rng.choice(others)
            return None
        # Numeric channel: absurd replacement.
        return str(rng.choice((rng.randint(150, 999), -rng.randint(1, 50))))

    def _augment(self, examples: list[ErrorExample], rng: random.Random) -> list[ErrorExample]:
        """Mint synthetic positives by replaying the channels on clean cells."""
        if not sum(self.channel_types.values()):
            return []
        clean_cells = [
            example for example in examples
            if not example.label and (example.row.get(example.attribute) or "")
        ]
        if not clean_cells:
            return []
        synthetic: list[ErrorExample] = []
        for _ in range(self.n_augment):
            source = clean_cells[rng.randrange(len(clean_cells))]
            value = source.row.get(source.attribute) or ""
            if not value:
                continue
            numeric_cell = is_numeric(value)
            dirty = self._corrupt(value, source.attribute, rng)
            if dirty is None or dirty == value:
                continue
            if not numeric_cell and is_numeric(dirty):
                continue  # keep channels type-consistent with the cell
            dirty_row = dict(source.row)
            dirty_row[source.attribute] = dirty
            synthetic.append(
                ErrorExample(
                    row=dirty_row,
                    attribute=source.attribute,
                    label=True,
                    clean_value=value,
                )
            )
        return synthetic

    # -- features ----------------------------------------------------------------

    def _features(self, example: ErrorExample) -> np.ndarray:
        attribute = example.attribute
        value = (example.row.get(attribute) or "").casefold()
        vocab = self.attribute_vocab.get(attribute, Counter())
        total = max(sum(vocab.values()), 1)
        frequency = vocab[value] / total
        if is_numeric(value):
            # Numeric cells: being inside the attribute's observed range is
            # what "frequent" means — exact membership is happenstance.
            numerics = [float(v) for v in vocab if is_numeric(v)]
            if numerics and min(numerics) <= float(value) <= max(numerics):
                frequency = max(frequency, 0.5)
        pattern = value_pattern(value)
        patterns = self.attribute_patterns.get(attribute, Counter())
        pattern_frequency = patterns[pattern] / max(sum(patterns.values()), 1)
        if value:
            char_scores = [self.char_frequency[ch] for ch in value]
            min_char = min(char_scores) / max(max(self.char_frequency.values()), 1)
        else:
            min_char = 0.0
        channel_hit = float(any(ch in self.channel_chars for ch in value)) if (
            self.channel_chars and self.channel_types.get("char", 0) > 0
        ) else 0.0
        in_other_domain = 0.0
        for other, counts in self.attribute_vocab.items():
            if other != attribute and counts[value] > 0:
                in_other_domain = 1.0
                break
        numeric_outlier = 0.0
        numerics = [float(v) for v in vocab if is_numeric(v)]
        if is_numeric(value) and numerics:
            low, high = min(numerics), max(numerics)
            span = max(high - low, 1.0)
            number = float(value)
            if number < low - 0.25 * span or number > high + 0.25 * span:
                numeric_outlier = 1.0
        return np.array([
            frequency, pattern_frequency, min_char, channel_hit,
            in_other_domain, numeric_outlier, 1.0,
        ])

    # -- public API -------------------------------------------------------------------

    def fit(self, dataset: ErrorDetectionDataset) -> "HoloDetect":
        rng = random.Random(self.seed)
        self._collect(dataset)
        self._learn_channel(dataset.train)
        training = list(dataset.train) + self._augment(dataset.train, rng)
        if not training:
            raise ValueError("cannot fit on an empty training split")
        features = np.vstack([self._features(example) for example in training])
        labels = np.array([float(example.label) for example in training])
        self.model.fit(features, labels)
        self.fitted = True
        return self

    def predict(self, example: ErrorExample) -> bool:
        if not self.fitted:
            raise RuntimeError("HoloDetect used before fit()")
        return bool(self.model.predict(self._features(example).reshape(1, -1))[0])

    def predict_many(self, examples: list[ErrorExample]) -> list[bool]:
        if not self.fitted:
            raise RuntimeError("HoloDetect used before fit()")
        features = np.vstack([self._features(example) for example in examples])
        return [bool(value) for value in self.model.predict(features)]
