"""L2-regularized binary logistic regression.

Full-batch gradient descent with Nesterov momentum.  The feature matrices in
this repository are small and dense, so a few hundred full-batch steps are
both fast and perfectly reproducible.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite; 36.7 is where float64 sigmoid saturates.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -36.7, 36.7)))


class LogisticRegression:
    """Binary logistic regression with L2 penalty and class weights.

    Parameters
    ----------
    l2:
        Regularization strength (coefficient on ``0.5 * ||w||^2 / n``).
    lr:
        Learning rate for gradient descent.
    epochs:
        Number of full-batch updates.
    class_weight:
        ``None`` or ``"balanced"``; balanced reweights classes inversely to
        their frequency, the setting every EM baseline needs because match
        pairs are rare.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.5,
        epochs: int = 300,
        class_weight: str | None = "balanced",
    ):
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.class_weight = class_weight
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if len(features) != len(labels):
            raise ValueError("features and labels disagree on sample count")
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")

        n_samples, n_features = features.shape
        sample_weight = np.ones(n_samples)
        if self.class_weight == "balanced":
            positives = labels.sum()
            negatives = n_samples - positives
            if positives > 0 and negatives > 0:
                sample_weight = np.where(
                    labels > 0.5,
                    n_samples / (2.0 * positives),
                    n_samples / (2.0 * negatives),
                )

        weights = np.zeros(n_features)
        bias = 0.0
        velocity_w = np.zeros(n_features)
        velocity_b = 0.0
        momentum = 0.9

        for _ in range(self.epochs):
            logits = features @ (weights + momentum * velocity_w) + (
                bias + momentum * velocity_b
            )
            probs = _sigmoid(logits)
            residual = (probs - labels) * sample_weight
            grad_w = features.T @ residual / n_samples + self.l2 * weights
            grad_b = residual.mean()
            velocity_w = momentum * velocity_w - self.lr * grad_w
            velocity_b = momentum * velocity_b - self.lr * grad_b
            weights = weights + velocity_w
            bias = bias + velocity_b

        self.weights_ = weights
        self.bias_ = float(bias)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("LogisticRegression used before fit()")
        features = np.asarray(features, dtype=np.float64)
        return _sigmoid(features @ self.weights_ + self.bias_)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(np.int64)
