"""A miniature ML library on numpy.

The baseline systems in the paper (Magellan, Ditto, HoloDetect, SMAT) are
learned models.  Rather than depending on scikit-learn, this package
implements the handful of estimators they need: an L2-regularized logistic
regression trained with full-batch gradient descent, a multinomial naive
Bayes, a bagged decision-stump forest, and feature-hashing utilities.
"""

from repro.ml.features import FeatureHasher, StandardScaler, hash_token
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.forest import StumpForest
from repro.ml.validation import train_validation_split

__all__ = [
    "FeatureHasher",
    "LogisticRegression",
    "MultinomialNaiveBayes",
    "StandardScaler",
    "StumpForest",
    "hash_token",
    "train_validation_split",
]
