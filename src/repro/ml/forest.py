"""A bagged forest of depth-limited decision trees.

Magellan ships random forests as its strongest matcher; this is the
dependency-free equivalent.  Trees split on single features with exhaustive
threshold search over quantile candidates; the forest averages leaf
probabilities over bootstrap resamples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a probability, internal nodes a split."""

    probability: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


def _best_split(
    features: np.ndarray, labels: np.ndarray, feature_ids: np.ndarray
) -> tuple[int, float, float]:
    """Best (feature, threshold, gain) over candidate features."""
    parent_impurity = _gini(labels)
    n = len(labels)
    best = (-1, 0.0, 0.0)
    for feature in feature_ids:
        column = features[:, feature]
        candidates = np.unique(
            np.quantile(column, np.linspace(0.1, 0.9, 9), method="nearest")
        )
        for threshold in candidates:
            mask = column <= threshold
            n_left = int(mask.sum())
            if n_left == 0 or n_left == n:
                continue
            impurity = (
                n_left * _gini(labels[mask]) + (n - n_left) * _gini(labels[~mask])
            ) / n
            gain = parent_impurity - impurity
            if gain > best[2]:
                best = (int(feature), float(threshold), float(gain))
    return best


def _grow(
    features: np.ndarray,
    labels: np.ndarray,
    depth: int,
    max_depth: int,
    min_leaf: int,
    rng: np.random.Generator,
    n_candidate_features: int,
) -> _Node:
    probability = float(labels.mean()) if len(labels) else 0.5
    node = _Node(probability=probability)
    if depth >= max_depth or len(labels) < 2 * min_leaf or _gini(labels) == 0.0:
        return node

    n_features = features.shape[1]
    feature_ids = rng.choice(
        n_features, size=min(n_candidate_features, n_features), replace=False
    )
    feature, threshold, gain = _best_split(features, labels, feature_ids)
    if feature < 0 or gain <= 1e-12:
        return node

    mask = features[:, feature] <= threshold
    if mask.sum() < min_leaf or (~mask).sum() < min_leaf:
        return node

    node.feature = feature
    node.threshold = threshold
    node.left = _grow(
        features[mask], labels[mask], depth + 1, max_depth, min_leaf, rng,
        n_candidate_features,
    )
    node.right = _grow(
        features[~mask], labels[~mask], depth + 1, max_depth, min_leaf, rng,
        n_candidate_features,
    )
    return node


class StumpForest:
    """Bagged shallow trees with feature subsampling.

    Despite the name it grows trees to ``max_depth`` (default 3), "stump"
    signalling the deliberately low capacity appropriate for the dozen-wide
    similarity feature vectors it consumes.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 3,
        min_leaf: int = 2,
        seed: int = 0,
    ):
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self.trees_: list[_Node] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "StumpForest":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.seed)
        n = len(labels)
        n_candidates = max(1, int(np.sqrt(features.shape[1])) + 1)
        self.trees_ = []
        for _ in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            self.trees_.append(
                _grow(
                    features[sample], labels[sample], 0, self.max_depth,
                    self.min_leaf, rng, n_candidates,
                )
            )
        return self

    @staticmethod
    def _score_one(node: _Node, row: np.ndarray) -> float:
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.probability

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("StumpForest used before fit()")
        features = np.asarray(features, dtype=np.float64)
        scores = np.zeros(len(features))
        for i, row in enumerate(features):
            scores[i] = sum(self._score_one(tree, row) for tree in self.trees_)
        return scores / self.n_trees

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(np.int64)
