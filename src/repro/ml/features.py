"""Feature engineering utilities: hashing and scaling."""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np


def hash_token(token: str, dim: int, salt: str = "") -> tuple[int, float]:
    """Map ``token`` to a (bucket, sign) pair via a stable hash.

    Uses blake2b so the mapping is stable across processes and Python
    versions (the builtin ``hash`` is salted per process).
    """
    digest = hashlib.blake2b((salt + token).encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    bucket = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return bucket, sign


class FeatureHasher:
    """Hashing vectorizer: token lists -> fixed-width dense numpy rows.

    Signed hashing keeps collisions unbiased.  Dense output keeps the mini
    estimators simple; the feature spaces here are small (<= 2**14).
    """

    def __init__(self, dim: int = 4096, salt: str = ""):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.salt = salt

    def transform_one(self, tokens: Sequence[str]) -> np.ndarray:
        row = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            bucket, sign = hash_token(token, self.dim, self.salt)
            row[bucket] += sign
        norm = np.linalg.norm(row)
        if norm > 0:
            row /= norm
        return row

    def transform(self, documents: Iterable[Sequence[str]]) -> np.ndarray:
        rows = [self.transform_one(tokens) for tokens in documents]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)


class StandardScaler:
    """Column-wise standardization with guards against zero variance."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        self.mean_ = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)
