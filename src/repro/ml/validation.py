"""Train/validation split helpers."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def train_validation_split(
    items: Sequence,
    validation_fraction: float = 0.1,
    seed: int = 0,
    stratify_labels: Sequence[int] | None = None,
) -> tuple[list, list]:
    """Split ``items`` into (train, validation) lists.

    With ``stratify_labels`` the validation set preserves class balance,
    which matters for the skewed EM pair sets.  The paper's manual prompt
    tuning uses a held-out validation set that is 10% of the labeled data —
    the default here.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError(
            f"validation_fraction must be in (0, 1), got {validation_fraction}"
        )
    rng = np.random.default_rng(seed)
    n = len(items)
    if n < 2:
        return list(items), []

    if stratify_labels is None:
        order = rng.permutation(n)
        n_val = max(1, int(round(n * validation_fraction)))
        val_ids = set(order[:n_val].tolist())
    else:
        if len(stratify_labels) != n:
            raise ValueError("stratify_labels length must match items")
        val_ids = set()
        labels = np.asarray(stratify_labels)
        for label in np.unique(labels):
            ids = np.flatnonzero(labels == label)
            ids = ids[rng.permutation(len(ids))]
            n_val = max(1, int(round(len(ids) * validation_fraction)))
            # Never consume an entire class into validation.
            n_val = min(n_val, len(ids) - 1) if len(ids) > 1 else 0
            val_ids.update(ids[:n_val].tolist())

    train = [item for i, item in enumerate(items) if i not in val_ids]
    validation = [item for i, item in enumerate(items) if i in val_ids]
    return train, validation
