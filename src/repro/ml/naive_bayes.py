"""Multinomial naive Bayes over token features.

Backs the IMP imputation baseline: predicting a missing attribute value
means ranking candidate classes by ``P(class) * prod P(token | class)`` over
the tokens of the serialized row context.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence


class MultinomialNaiveBayes:
    """Token-count naive Bayes with Laplace smoothing.

    Classes are arbitrary hashable labels (here: attribute values to
    impute).  The token vocabulary is open; unseen tokens contribute the
    smoothed floor probability for every class, so they cancel in ranking.
    """

    def __init__(self, alpha: float = 0.25, complement: bool = False,
                 prior_weight: float = 1.0):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if prior_weight < 0:
            raise ValueError(f"prior_weight must be >= 0, got {prior_weight}")
        self.alpha = alpha
        #: Exponent on the class prior.  1.0 is textbook NB; values
        #: below 1 damp the prior, which matters when single-token
        #: evidence (an area code seen once) must beat a frequent class.
        self.prior_weight = prior_weight
        #: Complement NB (Rennie et al. 2003): score each class by how
        #: *unlikely* the tokens are under every other class.  Robust to
        #: skewed class sizes — the per-class-denominator bias of vanilla
        #: multinomial NB vanishes because complements are all large.
        self.complement = complement
        self.class_counts_: Counter = Counter()
        self.token_counts_: dict[object, Counter] = defaultdict(Counter)
        self.class_totals_: Counter = Counter()
        self.global_token_counts_: Counter = Counter()
        self.vocabulary_: set[str] = set()

    def partial_fit(self, tokens: Sequence[str], label: object) -> None:
        """Add one (token list, class) observation."""
        self.class_counts_[label] += 1
        self.token_counts_[label].update(tokens)
        self.class_totals_[label] += len(tokens)
        self.global_token_counts_.update(tokens)
        self.vocabulary_.update(tokens)

    def fit(self, documents: Sequence[Sequence[str]], labels: Sequence[object]) -> "MultinomialNaiveBayes":
        if len(documents) != len(labels):
            raise ValueError("documents and labels disagree on sample count")
        for tokens, label in zip(documents, labels):
            self.partial_fit(tokens, label)
        return self

    @property
    def classes(self) -> list:
        return list(self.class_counts_)

    def log_score(self, tokens: Sequence[str], label: object) -> float:
        """Unnormalized log posterior of ``label`` given ``tokens``.

        Tokens never seen in training are skipped: they carry no class
        signal, and including them would bias scores toward small classes
        (their smoothed denominator is smaller).
        """
        if label not in self.class_counts_:
            return -math.inf
        total_docs = sum(self.class_counts_.values())
        score = self.prior_weight * math.log(self.class_counts_[label] / total_docs)
        vocab_size = max(len(self.vocabulary_), 1)
        counts = self.token_counts_[label]
        if self.complement:
            complement_total = (
                sum(self.class_totals_.values()) - self.class_totals_[label]
            )
            denominator = complement_total + self.alpha * vocab_size
            for token in tokens:
                if token not in self.vocabulary_:
                    continue
                complement_count = self.global_token_counts_[token] - counts[token]
                score -= math.log((complement_count + self.alpha) / denominator)
            return score
        denominator = self.class_totals_[label] + self.alpha * vocab_size
        for token in tokens:
            if token not in self.vocabulary_:
                continue
            score += math.log((counts[token] + self.alpha) / denominator)
        return score

    def predict(self, tokens: Sequence[str]) -> object:
        """Most probable class for ``tokens``.

        Raises ``RuntimeError`` if the model has seen no data.
        """
        if not self.class_counts_:
            raise RuntimeError("MultinomialNaiveBayes used before fit()")
        return max(self.classes, key=lambda label: self.log_score(tokens, label))

    def top_k(self, tokens: Sequence[str], k: int = 3) -> list[tuple[object, float]]:
        """The ``k`` best classes with their log scores, best first."""
        scored = [(label, self.log_score(tokens, label)) for label in self.classes]
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored[:k]
