"""Reconstruct two source tables from an EM pair dataset.

The Magellan benchmarks ship as labeled *pairs*; blocking experiments need
the underlying *tables*.  This module de-duplicates the left and right
rows of a dataset's pairs back into two tables plus the ground-truth match
index — enough to evaluate a blocker's pair completeness on benchmark
data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import EntityMatchingDataset, MatchingPair
from repro.datasets.table import Row, Table


def _row_key(row: Row) -> tuple:
    return tuple(sorted(row.items()))


@dataclass
class EmTables:
    """Two reconstructed source tables and the true match index pairs."""

    left: Table
    right: Table
    matches: list[tuple[int, int]]


def dataset_tables(
    dataset: EntityMatchingDataset, split: str = "test"
) -> EmTables:
    """De-duplicate a split's pairs into (left table, right table, matches)."""
    pairs: list[MatchingPair] = dataset.split(split)
    left_index: dict[tuple, int] = {}
    right_index: dict[tuple, int] = {}
    left_rows: list[Row] = []
    right_rows: list[Row] = []
    matches: list[tuple[int, int]] = []

    for pair in pairs:
        left_key = _row_key(pair.left)
        if left_key not in left_index:
            left_index[left_key] = len(left_rows)
            left_rows.append(pair.left)
        right_key = _row_key(pair.right)
        if right_key not in right_index:
            right_index[right_key] = len(right_rows)
            right_rows.append(pair.right)
        if pair.label:
            matches.append((left_index[left_key], right_index[right_key]))

    return EmTables(
        left=Table(dataset.attributes, left_rows),
        right=Table(dataset.attributes, right_rows),
        matches=matches,
    )
