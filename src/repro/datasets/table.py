"""A minimal relational table.

The library avoids pandas; a table is an ordered list of column names and a
list of row dictionaries mapping column → string value (or ``None`` for
NULL).  Values are kept as strings throughout — the paper serializes rows
to text, and every system here consumes that textual form.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

Row = dict[str, "str | None"]


class Table:
    """An ordered collection of rows sharing a schema."""

    def __init__(self, columns: list[str], rows: Iterable[Row] | None = None):
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        self.columns = list(columns)
        self._rows: list[Row] = []
        for row in rows or []:
            self.append(row)

    # -- mutation ----------------------------------------------------------

    def append(self, row: Row) -> None:
        """Append a row; missing columns become NULL, extras are an error."""
        extras = set(row) - set(self.columns)
        if extras:
            raise ValueError(f"row has unknown columns: {sorted(extras)}")
        normalized: Row = {column: row.get(column) for column in self.columns}
        self._rows.append(normalized)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    @property
    def rows(self) -> list[Row]:
        return self._rows

    def column_values(self, column: str, drop_null: bool = False) -> list[str | None]:
        """All values of ``column`` in row order."""
        if column not in self.columns:
            raise KeyError(column)
        values = [row[column] for row in self._rows]
        if drop_null:
            return [value for value in values if value is not None]
        return values

    def select(self, columns: list[str]) -> "Table":
        """A new table restricted to ``columns`` (order preserved)."""
        missing = [column for column in columns if column not in self.columns]
        if missing:
            raise KeyError(f"unknown columns: {missing}")
        rows = [{column: row[column] for column in columns} for row in self._rows]
        return Table(columns, rows)

    def where(self, predicate: Callable[[Row], bool]) -> "Table":
        """A new table of the rows satisfying ``predicate``."""
        return Table(self.columns, [row for row in self._rows if predicate(row)])

    def copy(self) -> "Table":
        """Deep-enough copy: rows are re-created dicts."""
        return Table(self.columns, [dict(row) for row in self._rows])

    def head(self, n: int = 5) -> "Table":
        return Table(self.columns, [dict(row) for row in self._rows[:n]])

    def __repr__(self) -> str:
        return f"Table(columns={self.columns}, n_rows={len(self)})"
