"""Imputation datasets: Restaurant (city) and Buy (manufacturer).

The Restaurant builder is also the substrate for the paper's Appendix B
slice analysis (Table 5), so it controls *training-set frequency* per city:

* ``heldout`` head cities — world-famous (high corpus frequency, so a large
  FM can recall them) but appearing **zero** times in the train split;
* ``rare`` tail cities — corpus frequency 0 (no FM recalls them) appearing
  1-10 times in train, learnable only through finetuning;
* ``common`` head cities — frequent both in the corpus and in train.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.base import ImputationDataset, ImputationExample
from repro.datasets.perturb import PerturbationConfig, perturb_row
from repro.datasets.table import Row
from repro.knowledge.world import World, default_world

RESTAURANT_ATTRIBUTES = ["name", "addr", "phone", "type", "city"]
BUY_ATTRIBUTES = ["name", "description", "price", "manufacturer"]


@dataclass
class RestaurantSliceInfo:
    """City-name → slice membership bookkeeping for Table 5."""

    heldout_cities: set[str] = field(default_factory=set)   # train freq = 0
    rare_cities: set[str] = field(default_factory=set)      # 0 < freq <= 10
    common_cities: set[str] = field(default_factory=set)    # freq > 10
    train_frequency: Counter = field(default_factory=Counter)

    def slice_of(self, city: str) -> str:
        """Which Table 5 slice a test example with this city falls into."""
        freq = self.train_frequency[city.casefold()]
        if freq == 0:
            return "freq=0"
        if freq <= 10:
            return "0<freq<=10"
        return "freq>10"


def build_restaurant(
    seed: int = 201, world: World | None = None
) -> tuple[ImputationDataset, RestaurantSliceInfo]:
    """The Restaurant city-imputation dataset plus slice bookkeeping."""
    world = world or default_world()
    rng = random.Random(seed)

    heads = sorted(world.head_cities, key=lambda city: city.frequency, reverse=True)
    # Held-out cities sit *between* the 175B and 6.7B knowledge floors:
    # famous enough that a 175B model recalls their geography, obscure
    # enough that smaller models do not — and they never appear in train,
    # so no finetuned model can learn them (Table 5's freq=0 slice).
    heldout = {city.name for city in heads[50:60]}
    common = {city.name for city in heads[:6]}          # famous, frequent in train
    rare = {city.name for city in world.tail_cities[:10]}  # tail, few train rows

    info = RestaurantSliceInfo(
        heldout_cities={name.casefold() for name in heldout},
        rare_cities={name.casefold() for name in rare},
        common_cities={name.casefold() for name in common},
    )

    def render(restaurant) -> Row:
        return {
            "name": restaurant.name,
            "addr": restaurant.address,
            "phone": restaurant.phone,
            "type": restaurant.cuisine,
            "city": restaurant.city.lower(),
        }

    light = PerturbationConfig(
        typo_rate=0.03, drop_token_rate=0.02, abbreviate_rate=0.3,
        case_rate=0.0, truncate_rate=0.0, null_rate=0.0,
        protected=("phone", "city"),
    )

    by_slice: dict[str, list] = {"heldout": [], "rare": [], "common": [], "other": []}
    for restaurant in world.restaurants:
        if restaurant.city in heldout:
            by_slice["heldout"].append(restaurant)
        elif restaurant.city in rare:
            by_slice["rare"].append(restaurant)
        elif restaurant.city in common:
            by_slice["common"].append(restaurant)
        else:
            by_slice["other"].append(restaurant)
    for group in by_slice.values():
        rng.shuffle(group)

    train_restaurants: list = []
    test_restaurants: list = []
    # Held-out cities: test only (train frequency must stay exactly 0).
    test_restaurants.extend(by_slice["heldout"])
    # Rare tail cities: at most 3 train rows per city, the rest to test.
    rare_counter: Counter = Counter()
    for restaurant in by_slice["rare"]:
        if rare_counter[restaurant.city] < 3:
            rare_counter[restaurant.city] += 1
            train_restaurants.append(restaurant)
        else:
            test_restaurants.append(restaurant)
    # Common cities: mostly train (they must exceed 10 occurrences).
    for i, restaurant in enumerate(by_slice["common"]):
        (test_restaurants if i % 4 == 0 else train_restaurants).append(restaurant)
    # Everything else: mid-tier cities, mostly train — and always at least
    # one train row per city, so supervised imputers face no unlearnable
    # cities outside the designed held-out slice.
    seen_mid: set[str] = set()
    for i, restaurant in enumerate(by_slice["other"]):
        if restaurant.city not in seen_mid:
            seen_mid.add(restaurant.city)
            train_restaurants.append(restaurant)
        elif i % 3 == 0:
            test_restaurants.append(restaurant)
        else:
            train_restaurants.append(restaurant)

    def to_example(restaurant) -> ImputationExample:
        row = perturb_row(render(restaurant), light, rng)
        masked = dict(row)
        masked["city"] = None
        return ImputationExample(row=masked, attribute="city", answer=row["city"])

    rng.shuffle(train_restaurants)
    complete_train_rows = [perturb_row(render(r), light, rng) for r in train_restaurants]
    for row in complete_train_rows:
        info.train_frequency[(row["city"] or "").casefold()] += 1

    train_examples = [
        ImputationExample(
            row={**row, "city": None}, attribute="city", answer=row["city"]
        )
        for row in complete_train_rows
    ]
    rng.shuffle(test_restaurants)
    test_examples = [to_example(restaurant) for restaurant in test_restaurants]
    n_valid = max(1, len(test_examples) // 5)
    valid_examples, test_examples = test_examples[:n_valid], test_examples[n_valid:]

    dataset = ImputationDataset(
        name="restaurant",
        attributes=RESTAURANT_ATTRIBUTES,
        target_attribute="city",
        train=train_examples,
        valid=valid_examples,
        test=test_examples,
        complete_train_rows=complete_train_rows,
    )
    return dataset, info


def build_restaurant_dataset(seed: int = 201, world: World | None = None) -> ImputationDataset:
    """Registry-friendly wrapper returning just the dataset."""
    dataset, _info = build_restaurant(seed, world)
    return dataset


def build_buy(seed: int = 202, world: World | None = None) -> ImputationDataset:
    """The Buy manufacturer-imputation dataset.

    Product names usually contain the brand token (so supervised context
    models excel); when the brand is absent the manufacturer can only be
    recovered from product-line knowledge — the FM's edge.
    """
    world = world or default_world()
    rng = random.Random(seed)

    def render(product) -> Row:
        omit_brand = rng.random() < 0.2
        name = product.short_name if omit_brand else product.name
        description = f"{product.category} - {product.short_name}"
        return {
            "name": name,
            "description": description,
            "price": f"${product.price:.2f}",
            "manufacturer": product.manufacturer,
        }

    light = PerturbationConfig(
        typo_rate=0.02, drop_token_rate=0.03, abbreviate_rate=0.05,
        case_rate=0.3, truncate_rate=0.0, null_rate=0.0,
        protected=("manufacturer", "price"),
    )

    products = list(world.products)
    rng.shuffle(products)
    n_train = int(len(products) * 0.6)
    n_valid = int(len(products) * 0.1)

    def to_example(product) -> ImputationExample:
        row = perturb_row(render(product), light, rng)
        masked = dict(row)
        masked["manufacturer"] = None
        return ImputationExample(
            row=masked, attribute="manufacturer", answer=row["manufacturer"]
        )

    complete_train_rows = [
        perturb_row(render(product), light, rng) for product in products[:n_train]
    ]
    train_examples = [
        ImputationExample(
            row={**row, "manufacturer": None},
            attribute="manufacturer",
            answer=row["manufacturer"],
        )
        for row in complete_train_rows
    ]
    valid_examples = [to_example(p) for p in products[n_train : n_train + n_valid]]
    test_examples = [to_example(p) for p in products[n_train + n_valid :]]

    return ImputationDataset(
        name="buy",
        attributes=BUY_ATTRIBUTES,
        target_attribute="manufacturer",
        train=train_examples,
        valid=valid_examples,
        test=test_examples,
        complete_train_rows=complete_train_rows,
    )
