"""The seven Magellan entity-matching dataset builders.

Each builder renders entities from the shared world into two differently
formatted "sources" and delegates pair generation to
:func:`repro.datasets.em.build_em_dataset`.  Per-dataset perturbation and
hard-negative settings are tuned to the published difficulty ordering:
Fodors-Zagats trivial → DBLP-ACM easy → Beer/iTunes moderate →
Walmart-Amazon/DBLP-Scholar harder → Amazon-Google hardest (jargon-dense
software listings whose only discriminative token is a version number).
"""

from __future__ import annotations

import random

from repro.datasets.base import EntityMatchingDataset
from repro.datasets.em import build_em_dataset
from repro.datasets.perturb import PerturbationConfig
from repro.datasets.table import Row
from repro.knowledge.beers import STYLES
from repro.knowledge.music import GENRES
from repro.knowledge.papers import VENUE_ALIASES
from repro.knowledge.world import World, default_world

_PLATFORM_JARGON = (
    "xp 98 nt w2k me", "windows xp/vista", "win 2000 pro", "mac os x",
    "cd-rom", "host only cd-rom", "dvd retail", "3-user pack", "oem sp2",
    "v2 upgrade only",
)


def _initials(full_name: str) -> str:
    """"Ada Chen" → "A. Chen" — GoogleScholar-style author rendering."""
    parts = full_name.split()
    if len(parts) < 2:
        return full_name
    return f"{parts[0][0]}. {' '.join(parts[1:])}"


# ---------------------------------------------------------------------------
# Fodors-Zagats (restaurants; trivial)
# ---------------------------------------------------------------------------

def build_fodors_zagats(seed: int = 101, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()

    def render(restaurant) -> Row:
        return {
            "name": restaurant.name,
            "addr": restaurant.address,
            "city": restaurant.city.lower(),
            "phone": restaurant.phone,
            "type": restaurant.cuisine,
        }

    def render_zagats(restaurant) -> Row:
        row = render(restaurant)
        # Zagats writes phones with slashes: 310/456-5733.
        row["phone"] = restaurant.phone.replace("-", "/", 1)
        return row

    light = PerturbationConfig(
        typo_rate=0.03, drop_token_rate=0.03, abbreviate_rate=0.25,
        case_rate=0.1, truncate_rate=0.0, null_rate=0.01,
        protected=("phone",),
    )
    return build_em_dataset(
        name="fodors_zagats",
        entities=world.restaurants,
        attributes=["name", "addr", "city", "phone", "type"],
        key_attributes=["name", "addr", "phone"],
        render_left=render,
        render_right=render_zagats,
        left_config=light,
        right_config=light,
        group_key=lambda restaurant: restaurant.city,
        n_matches=120,
        n_hard_negatives=160,
        n_random_negatives=320,
        seed=seed,
        entity_noun="Restaurant",
    )


# ---------------------------------------------------------------------------
# Beer (small training set; moderate)
# ---------------------------------------------------------------------------

def build_beer(seed: int = 102, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()
    rng = random.Random(seed * 31 + 5)

    def render_left(beer) -> Row:
        return {
            "Beer_Name": beer.name,
            "Brew_Factory_Name": beer.brewery,
            "Style": beer.style,
            "ABV": beer.abv,
        }

    def render_right(beer) -> Row:
        # The second source prefixes the brewery into the beer name,
        # renders ABV inconsistently (rounded, re-measured, unit-free) and
        # follows its own style taxonomy — the non-key attributes are
        # noise across sources.
        abv = f"{float(beer.abv.rstrip('%')) + rng.uniform(-0.2, 0.2):.1f}"
        if rng.random() < 0.5:
            abv += "%"
        style = beer.style if rng.random() < 0.75 else rng.choice(STYLES)
        return {
            "Beer_Name": f"{beer.brewery} {beer.name}",
            "Brew_Factory_Name": beer.brewery,
            "Style": style,
            "ABV": abv,
        }

    config = PerturbationConfig(
        typo_rate=0.16, drop_token_rate=0.22, abbreviate_rate=0.15,
        case_rate=0.35, truncate_rate=0.08, null_rate=0.1,
    )
    return build_em_dataset(
        name="beer",
        entities=world.beers,
        attributes=["Beer_Name", "Brew_Factory_Name", "Style", "ABV"],
        key_attributes=["Beer_Name", "Brew_Factory_Name"],
        render_left=render_left,
        render_right=render_right,
        left_config=config,
        right_config=config,
        group_key=lambda beer: beer.name.split()[-1],
        n_matches=60,
        n_hard_negatives=100,
        n_random_negatives=120,
        seed=seed,
        entity_noun="Beer",
    )


# ---------------------------------------------------------------------------
# iTunes-Amazon (music; moderate, cross-source format skew)
# ---------------------------------------------------------------------------

def build_itunes_amazon(seed: int = 103, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()
    rng = random.Random(seed * 31 + 7)

    attributes = [
        "Song_Name", "Artist_Name", "Album_Name", "Genre", "Price", "Time",
        "Released",
    ]

    def render_itunes(track) -> Row:
        return {
            "Song_Name": track.title,
            "Artist_Name": track.artist,
            "Album_Name": track.album,
            "Genre": track.genre,
            "Price": track.price,
            "Time": track.time,
            "Released": track.released,
        }

    def render_amazon(track) -> Row:
        # Non-key attributes genuinely disagree across stores: prices and
        # genre taxonomies differ, release dates refer to reissues, track
        # lengths to different masters.  This is why attribute selection
        # helps (Table 4): these columns are noise, not signal.
        row = render_itunes(track)
        row["Price"] = rng.choice(("0.99", "1.29", "1.99"))
        if rng.random() < 0.5:
            row["Genre"] = rng.choice(GENRES)
        if rng.random() < 0.5:
            released_year = rng.randint(1998, 2014)
            row["Released"] = f"{rng.randint(1, 12)}/{rng.randint(1, 28)}/{released_year}"
        if rng.random() < 0.4:                   # "[Explicit]"-style suffixes
            row["Song_Name"] = f"{track.title} [{rng.choice(('Explicit', 'Album Version', 'Live'))}]"
        minutes, seconds = track.time.split(":")
        if rng.random() < 0.5:
            row["Time"] = f"{minutes} min {rng.randint(0, 59)} sec"
        return row

    config = PerturbationConfig(
        typo_rate=0.11, drop_token_rate=0.09, abbreviate_rate=0.05,
        case_rate=0.3, truncate_rate=0.05, null_rate=0.08,
    )
    return build_em_dataset(
        name="itunes_amazon",
        entities=world.tracks,
        attributes=attributes,
        key_attributes=["Song_Name", "Artist_Name", "Album_Name"],
        render_left=render_itunes,
        render_right=render_amazon,
        left_config=config,
        right_config=config,
        group_key=lambda track: track.title.split()[0].casefold(),
        n_matches=110,
        n_hard_negatives=180,
        n_random_negatives=250,
        seed=seed,
        entity_noun="Song",
    )


# ---------------------------------------------------------------------------
# Walmart-Amazon (products; harder, model-number jargon)
# ---------------------------------------------------------------------------

def build_walmart_amazon(seed: int = 104, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()
    rng = random.Random(seed * 31 + 11)

    def render_walmart(product) -> Row:
        # Walmart titles frequently omit the brand.
        title = product.short_name if rng.random() < 0.4 else product.name
        return {
            "title": title,
            "category": product.category,
            "brand": product.manufacturer,
            "modelno": product.model_code if rng.random() < 0.7 else None,
            "price": f"{product.price:.2f}",
        }

    def render_amazon(product) -> Row:
        return {
            "title": product.name,
            "category": product.category,
            "brand": product.manufacturer if rng.random() < 0.7 else None,
            "modelno": product.model_code if rng.random() < 0.55 else None,
            "price": f"{product.price * rng.uniform(0.93, 1.07):.2f}",
        }

    config = PerturbationConfig(
        typo_rate=0.07, drop_token_rate=0.1, abbreviate_rate=0.1,
        case_rate=0.35, truncate_rate=0.06, noise_rate=0.15, null_rate=0.04,
        price_jitter_rate=0.3,
    )

    def line_of(product) -> str:
        # Everything but the model code: "sony digital camera".
        return f"{product.manufacturer} {product.short_name.rsplit(' ', 1)[0]}"

    return build_em_dataset(
        name="walmart_amazon",
        entities=world.products,
        attributes=["title", "category", "brand", "modelno", "price"],
        key_attributes=["title", "modelno", "brand"],
        render_left=render_walmart,
        render_right=render_amazon,
        left_config=config,
        right_config=config,
        group_key=line_of,
        n_matches=190,
        n_hard_negatives=360,
        n_random_negatives=410,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# DBLP-ACM (citations; easy) and DBLP-GoogleScholar (citations; noisy)
# ---------------------------------------------------------------------------

def _paper_topic(title: str) -> str:
    """Blocking key for citations: the title minus its leading template words.

    Template siblings ("Towards adaptive join algorithms" vs "Rethinking
    adaptive join algorithms") share a suffix — ideal hard negatives.
    """
    words = title.lower().replace(":", "").split()
    return " ".join(words[-4:])


def build_dblp_acm(seed: int = 105, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()

    def render(paper) -> Row:
        return {
            "title": paper.title,
            "authors": ", ".join(paper.authors),
            "venue": paper.venue,
            "year": str(paper.year),
        }

    clean = PerturbationConfig(
        typo_rate=0.02, drop_token_rate=0.02, abbreviate_rate=0.02,
        case_rate=0.15, truncate_rate=0.0, null_rate=0.01,
    )
    return build_em_dataset(
        name="dblp_acm",
        entities=world.papers,
        attributes=["title", "authors", "venue", "year"],
        key_attributes=["title", "authors", "year"],
        render_left=render,
        render_right=render,
        left_config=clean,
        right_config=clean,
        group_key=lambda paper: _paper_topic(paper.title),
        n_matches=220,
        n_hard_negatives=300,
        n_random_negatives=420,
        seed=seed,
        entity_noun="Citation",
    )


def build_dblp_scholar(seed: int = 106, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()
    rng = random.Random(seed * 31 + 13)

    def render_dblp(paper) -> Row:
        return {
            "title": paper.title,
            "authors": ", ".join(paper.authors),
            "venue": paper.venue,
            "year": str(paper.year),
        }

    def render_scholar(paper) -> Row:
        # GoogleScholar: sloppy venue strings, initials for authors,
        # lowercase titles, years often missing.
        authors = ", ".join(_initials(author) for author in paper.authors)
        if rng.random() < 0.3 and len(paper.authors) > 1:
            authors = _initials(paper.authors[0]) + " et al."
        return {
            "title": paper.title.lower(),
            "authors": authors,
            "venue": VENUE_ALIASES.get(paper.venue, paper.venue),
            "year": str(paper.year) if rng.random() < 0.6 else None,
        }

    dirty = PerturbationConfig(
        typo_rate=0.08, drop_token_rate=0.08, abbreviate_rate=0.05,
        case_rate=0.2, truncate_rate=0.08, null_rate=0.05,
    )
    return build_em_dataset(
        name="dblp_scholar",
        entities=world.papers,
        attributes=["title", "authors", "venue", "year"],
        key_attributes=["title", "authors", "year"],
        render_left=render_dblp,
        render_right=render_scholar,
        left_config=PerturbationConfig(
            typo_rate=0.02, drop_token_rate=0.02, abbreviate_rate=0.02,
            case_rate=0.1, null_rate=0.01,
        ),
        right_config=dirty,
        group_key=lambda paper: _paper_topic(paper.title),
        n_matches=220,
        n_hard_negatives=380,
        n_random_negatives=360,
        seed=seed,
        entity_noun="Citation",
    )


# ---------------------------------------------------------------------------
# Amazon-Google (software; hardest — version-number jargon, NULL brands)
# ---------------------------------------------------------------------------

def build_amazon_google(seed: int = 107, world: World | None = None) -> EntityMatchingDataset:
    world = world or default_world()
    rng = random.Random(seed * 31 + 17)
    software = [product for product in world.products if product.category == "software"]

    def render_amazon(product) -> Row:
        jargon = rng.choice(_PLATFORM_JARGON)
        return {
            "title": f"{product.short_name} {jargon}",
            "manufacturer": product.manufacturer if rng.random() < 0.35 else None,
            "price": f"{product.price:.2f}" if rng.random() < 0.5 else None,
        }

    def render_google(product) -> Row:
        name = f"{product.manufacturer} {product.short_name}"
        if rng.random() < 0.3:
            # Google listings sometimes drop the version/model token.
            name = f"{product.manufacturer} {product.short_name.rsplit(' ', 1)[0]}"
        return {
            "title": name.lower(),
            "manufacturer": None if rng.random() < 0.6 else product.manufacturer,
            "price": f"{product.price * rng.uniform(0.85, 1.15):.2f}",
        }

    config = PerturbationConfig(
        typo_rate=0.08, drop_token_rate=0.12, abbreviate_rate=0.08,
        case_rate=0.3, truncate_rate=0.08, noise_rate=0.1, null_rate=0.05,
    )

    def line_of(product) -> str:
        return f"{product.manufacturer} {product.short_name.rsplit(' ', 1)[0]}"

    return build_em_dataset(
        name="amazon_google",
        entities=software,
        attributes=["title", "manufacturer", "price"],
        key_attributes=["title", "manufacturer"],
        render_left=render_amazon,
        render_right=render_google,
        left_config=config,
        right_config=config,
        group_key=line_of,
        n_matches=180,
        n_hard_negatives=450,
        n_random_negatives=330,
        seed=seed,
    )


EM_BUILDERS = {
    "fodors_zagats": build_fodors_zagats,
    "beer": build_beer,
    "itunes_amazon": build_itunes_amazon,
    "walmart_amazon": build_walmart_amazon,
    "dblp_acm": build_dblp_acm,
    "dblp_scholar": build_dblp_scholar,
    "amazon_google": build_amazon_google,
}
