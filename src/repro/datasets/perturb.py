"""Perturbation machinery: turning clean entities into dirty variants.

Entity-matching datasets are built by rendering one underlying entity into
two differently-dirty rows; error-detection datasets by injecting cell
errors into clean rows.  All operators take an explicit ``random.Random``
so generation is deterministic per dataset seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.table import Row

_KEYBOARD_NEIGHBORS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}

# Inverse of the expansion table in repro.text.normalize: used to
# *introduce* abbreviations, simulating a tersely-formatted source.
_CONTRACTIONS = {
    "street": "st.",
    "avenue": "ave.",
    "boulevard": "blvd",
    "road": "rd",
    "highway": "hwy",
    "drive": "dr",
    "north": "n",
    "south": "s",
    "east": "e",
    "west": "w",
    "corporation": "corp.",
    "incorporated": "inc.",
    "company": "co.",
    "and": "&",
    "limited": "ltd",
    "international": "intl",
}

_MARKETING_NOISE = (
    "new", "sale", "best price", "free shipping", "in stock", "hot",
    "limited", "original", "genuine", "sealed",
)


def typo(value: str, rng: random.Random) -> str:
    """One keyboard-plausible edit: substitute, transpose, drop or double."""
    if len(value) < 2:
        return value
    i = rng.randrange(len(value))
    operation = rng.randrange(4)
    if operation == 0:  # substitution with a keyboard neighbor
        ch = value[i].lower()
        neighbors = _KEYBOARD_NEIGHBORS.get(ch)
        if not neighbors:
            return value
        replacement = rng.choice(neighbors)
        if value[i].isupper():
            replacement = replacement.upper()
        return value[:i] + replacement + value[i + 1 :]
    if operation == 1 and i < len(value) - 1:  # transposition
        return value[:i] + value[i + 1] + value[i] + value[i + 2 :]
    if operation == 2:  # deletion
        return value[:i] + value[i + 1 :]
    return value[:i] + value[i] + value[i:]  # doubling


def drop_token(value: str, rng: random.Random) -> str:
    """Remove one whitespace-delimited token (keeps at least one)."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    tokens.pop(rng.randrange(len(tokens)))
    return " ".join(tokens)


def abbreviate(value: str, rng: random.Random) -> str:
    """Contract one expandable word ("street" → "st.")."""
    tokens = value.split()
    candidates = [i for i, token in enumerate(tokens) if token.lower() in _CONTRACTIONS]
    if not candidates:
        return value
    i = rng.choice(candidates)
    tokens[i] = _CONTRACTIONS[tokens[i].lower()]
    return " ".join(tokens)


def change_case(value: str, rng: random.Random) -> str:
    """Switch between lower / UPPER / Title case."""
    return rng.choice((value.lower(), value.upper(), value.title()))


def truncate(value: str, rng: random.Random) -> str:
    """Keep a prefix of the tokens (at least one)."""
    tokens = value.split()
    if len(tokens) < 3:
        return value
    keep = rng.randint(max(1, len(tokens) - 2), len(tokens) - 1)
    return " ".join(tokens[:keep])


def add_marketing_noise(value: str, rng: random.Random) -> str:
    """Append a marketplace filler phrase ("free shipping")."""
    return f"{value} {rng.choice(_MARKETING_NOISE)}"


def corrupt_char_x(value: str, rng: random.Random) -> str:
    """Replace one character with 'x' — the Hospital dataset's error style."""
    if not value:
        return value
    i = rng.randrange(len(value))
    return value[:i] + "x" + value[i + 1 :]


def jitter_price(value: str, rng: random.Random) -> str:
    """Perturb a price string by a few percent, preserving format."""
    stripped = value.replace("$", "").replace(",", "")
    try:
        price = float(stripped)
    except ValueError:
        return value
    price *= 1.0 + rng.uniform(-0.05, 0.05)
    prefix = "$" if value.strip().startswith("$") else ""
    return f"{prefix}{price:.2f}"


@dataclass
class PerturbationConfig:
    """Rates for each operator, applied independently per cell.

    ``null_rate`` NULLs the cell outright (NULL-heavy sources like the
    Amazon-Google manufacturer column are a named pain point in the paper).
    """

    typo_rate: float = 0.1
    drop_token_rate: float = 0.1
    abbreviate_rate: float = 0.2
    case_rate: float = 0.3
    truncate_rate: float = 0.05
    noise_rate: float = 0.0
    null_rate: float = 0.02
    price_jitter_rate: float = 0.0
    #: attributes never perturbed (e.g. the label-bearing key).
    protected: tuple[str, ...] = field(default_factory=tuple)


def perturb_value(value: str, config: PerturbationConfig, rng: random.Random) -> str | None:
    """Apply the configured operators to one cell value."""
    if rng.random() < config.null_rate:
        return None
    result = value
    if rng.random() < config.abbreviate_rate:
        result = abbreviate(result, rng)
    if rng.random() < config.typo_rate:
        result = typo(result, rng)
    if rng.random() < config.drop_token_rate:
        result = drop_token(result, rng)
    if rng.random() < config.truncate_rate:
        result = truncate(result, rng)
    if rng.random() < config.noise_rate:
        result = add_marketing_noise(result, rng)
    if rng.random() < config.price_jitter_rate:
        result = jitter_price(result, rng)
    if rng.random() < config.case_rate:
        result = change_case(result, rng)
    return result


def perturb_row(row: Row, config: PerturbationConfig, rng: random.Random) -> Row:
    """A dirty copy of ``row``; protected and NULL cells pass through."""
    dirty: Row = {}
    for attribute, value in row.items():
        if value is None or attribute in config.protected:
            dirty[attribute] = value
        else:
            dirty[attribute] = perturb_value(value, config, rng)
    return dirty
