"""Scale knob: grow a benchmark dataset's test split to N rows.

ROADMAP item 2 (sharded million-row runs) needs workloads bigger than
the paper's benchmark-sized splits.  ``scale_dataset`` stretches an
EM/ED/DI dataset's *test* split to exactly ``n_rows`` examples by
cycling the base examples and deriving perturbed variants — the same
typo/variant dirt the generators themselves inject — with labels
carried over unchanged.  Train/valid splits (the demonstration pools)
are left alone, so demonstration selection and prompt prefixes are
identical at every scale.

Determinism: every derived example is a pure function of
``(seed, copy_round, base_index)`` through ``random.Random``, so two
processes that scale the same dataset agree byte-for-byte — which is
what lets sharded workers (:mod:`repro.shard`) rebuild the workload
independently instead of shipping rows around.

Each variant also carries an explicit variant marker in one attribute
value, so every scaled example renders to a *distinct* prompt; the
sharded runner's duplicate-backend-call accounting (one call per unique
prompt digest) relies on that.
"""

from __future__ import annotations

import random

from repro.datasets.base import (
    EntityMatchingDataset,
    ErrorDetectionDataset,
    ErrorExample,
    ImputationDataset,
    ImputationExample,
    MatchingPair,
)
from repro.datasets.perturb import typo

__all__ = ["scale_dataset"]


def _variant_value(value: str, copy_round: int, rng: random.Random) -> str:
    """A deterministically-dirtied variant of one cell value.

    The ``~N`` marker guarantees distinctness across copy rounds even
    when the typo operator happens to be a no-op (short values).
    """
    return f"{typo(value, rng)} ~{copy_round}"


def _pick_attribute(row: dict, exclude: set[str]) -> str | None:
    """First attribute (insertion order) with a usable string value."""
    for name, value in row.items():
        if name in exclude:
            continue
        if isinstance(value, str) and value.strip():
            return name
    return None


def _variant_row(
    row: dict, exclude: set[str], copy_round: int, rng: random.Random
) -> dict:
    out = dict(row)
    attribute = _pick_attribute(out, exclude)
    if attribute is not None:
        out[attribute] = _variant_value(out[attribute], copy_round, rng)
    return out


def _scaled_examples(base: list, n_rows: int, derive) -> list:
    """Cycle ``base`` out to ``n_rows``: round 0 verbatim, then variants."""
    if not base:
        raise ValueError("cannot scale an empty test split")
    out = []
    copy_round = 0
    while len(out) < n_rows:
        for index, example in enumerate(base):
            if len(out) >= n_rows:
                break
            if copy_round == 0:
                out.append(example)
            else:
                out.append(derive(example, copy_round, index))
        copy_round += 1
    return out


def scale_dataset(dataset, n_rows: int, seed: int = 0):
    """Return a copy of ``dataset`` whose test split has ``n_rows`` rows.

    Supports the three per-row tasks the shard driver targets (EM, ED,
    DI).  The scaled dataset's ``name`` gains an ``@N`` suffix so run
    fingerprints and manifests distinguish scales.
    """
    if n_rows <= 0:
        raise ValueError(f"scale must be positive, got {n_rows}")

    def rng_for(copy_round: int, index: int) -> random.Random:
        return random.Random((seed * 1_000_003 + copy_round) * 1_000_003 + index)

    name = f"{dataset.name}@{n_rows}"
    if isinstance(dataset, EntityMatchingDataset):
        exclude = set()

        def derive_pair(pair, copy_round, index):
            rng = rng_for(copy_round, index)
            return MatchingPair(
                left=_variant_row(pair.left, exclude, copy_round, rng),
                right=_variant_row(pair.right, exclude, copy_round, rng),
                label=pair.label,
            )

        return EntityMatchingDataset(
            name=name,
            attributes=list(dataset.attributes),
            key_attributes=list(dataset.key_attributes),
            train=list(dataset.train),
            valid=list(dataset.valid),
            test=_scaled_examples(dataset.test, n_rows, derive_pair),
            entity_noun=dataset.entity_noun,
        )
    if isinstance(dataset, ErrorDetectionDataset):

        def derive_error(example, copy_round, index):
            rng = rng_for(copy_round, index)
            # Never touch the cell under scrutiny: its dirtiness is the
            # label.  Variants dirty a *different* attribute.
            row = _variant_row(
                example.row, {example.attribute}, copy_round, rng
            )
            return ErrorExample(
                row=row,
                attribute=example.attribute,
                label=example.label,
                clean_value=example.clean_value,
            )

        return ErrorDetectionDataset(
            name=name,
            attributes=list(dataset.attributes),
            train=list(dataset.train),
            valid=list(dataset.valid),
            test=_scaled_examples(dataset.test, n_rows, derive_error),
            clean_rows=list(dataset.clean_rows),
        )
    if isinstance(dataset, ImputationDataset):

        def derive_imputation(example, copy_round, index):
            rng = rng_for(copy_round, index)
            row = _variant_row(
                example.row, {dataset.target_attribute}, copy_round, rng
            )
            return ImputationExample(
                row=row,
                attribute=example.attribute,
                answer=example.answer,
            )

        return ImputationDataset(
            name=name,
            attributes=list(dataset.attributes),
            target_attribute=dataset.target_attribute,
            train=list(dataset.train),
            valid=list(dataset.valid),
            test=_scaled_examples(dataset.test, n_rows, derive_imputation),
            complete_train_rows=list(dataset.complete_train_rows),
        )
    raise ValueError(
        f"the scale knob supports EM/ED/DI datasets, not "
        f"{type(dataset).__name__}"
    )
