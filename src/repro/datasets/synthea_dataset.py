"""Synthea → OMOP schema-matching dataset (OMAP benchmark style).

Pairs are (source attribute, target attribute) with a binary correspondence
label.  Positives come from the ground-truth correspondence list in
:mod:`repro.knowledge.medical`; negatives are sampled with a bias toward
*hard* negatives — pairs that share a table theme or a token ("start" vs
"visit_end_datetime") without corresponding.
"""

from __future__ import annotations

import random

from repro.datasets.base import SchemaMatchingDataset, SchemaPair
from repro.knowledge.medical import (
    CORRESPONDENCES,
    OMOP_ATTRIBUTES,
    SYNTHEA_ATTRIBUTES,
    SchemaAttribute,
)


def _attribute_index(attributes) -> dict[str, SchemaAttribute]:
    return {attribute.qualified: attribute for attribute in attributes}


#: Split by *source table*: a matcher trained on the demographic tables
#: must generalize to the clinical-event tables, whose correspondences are
#: dominated by domain jargon (code → drug_concept_id) rather than lexical
#: overlap.  This is what keeps supervised lexical matchers modest on the
#: real OMAP benchmark.
TRAIN_TABLES = frozenset({"patients", "providers"})
VALID_TABLES = frozenset({"encounters"})
TEST_TABLES = frozenset({"medications", "conditions", "observations"})


def build_synthea(seed: int = 401, world=None, negatives_per_positive: int = 6) -> SchemaMatchingDataset:
    """Build the Synthea SM dataset.  ``world`` accepted for uniformity."""
    del world
    rng = random.Random(seed)
    source_index = _attribute_index(SYNTHEA_ATTRIBUTES)
    target_index = _attribute_index(OMOP_ATTRIBUTES)
    positive_keys = set(CORRESPONDENCES)

    pairs: list[SchemaPair] = [
        SchemaPair(left=source_index[src], right=target_index[dst], label=True)
        for src, dst in CORRESPONDENCES
    ]

    def tokens(attribute: SchemaAttribute) -> set[str]:
        return set(attribute.name.replace("_", " ").split()) | {attribute.table}

    sources = list(SYNTHEA_ATTRIBUTES)
    targets = list(OMOP_ATTRIBUTES)
    n_negatives = negatives_per_positive * len(pairs)
    seen: set[tuple[str, str]] = set(positive_keys)
    attempts = 0
    added = 0
    while added < n_negatives and attempts < n_negatives * 30:
        attempts += 1
        left = sources[rng.randrange(len(sources))]
        right = targets[rng.randrange(len(targets))]
        key = (left.qualified, right.qualified)
        if key in seen:
            continue
        # Bias toward hard negatives: half must share a token.
        shares_token = bool(tokens(left) & tokens(right))
        if added % 2 == 0 and not shares_token:
            continue
        seen.add(key)
        pairs.append(SchemaPair(left=left, right=right, label=False))
        added += 1

    train = [pair for pair in pairs if pair.left.table in TRAIN_TABLES]
    valid = [pair for pair in pairs if pair.left.table in VALID_TABLES]
    test = [pair for pair in pairs if pair.left.table in TEST_TABLES]
    rng.shuffle(train)
    rng.shuffle(valid)
    rng.shuffle(test)
    return SchemaMatchingDataset(name="synthea", train=train, valid=valid, test=test)
