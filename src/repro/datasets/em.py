"""Generic entity-matching dataset generator.

Every Magellan-style dataset is produced the same way:

1. Take a corpus of underlying entities from the shared world.
2. Render each entity into a clean row (two dataset-specific renderers, one
   per source, so the two "tables" disagree on formatting conventions).
3. *Matches*: perturb the two renderings of the same entity independently.
4. *Non-matches*: pair different entities — a mix of random negatives and
   *hard negatives* drawn from the same blocking group (same brand line,
   same artist, …), which is what survives real blocking and is what makes
   the jargon-heavy datasets hard.
5. Shuffle and split 3:1:1 into train/valid/test (the Magellan protocol).
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Callable, Sequence

from repro.datasets.base import EntityMatchingDataset, MatchingPair
from repro.datasets.perturb import PerturbationConfig, perturb_row
from repro.datasets.table import Row

Renderer = Callable[[object], Row]
GroupKey = Callable[[object], str]


def split_3_1_1(items: list, rng: random.Random) -> tuple[list, list, list]:
    """Shuffle and split into 60/20/20 train/valid/test."""
    shuffled = list(items)
    rng.shuffle(shuffled)
    n = len(shuffled)
    n_train = int(n * 0.6)
    n_valid = int(n * 0.2)
    return (
        shuffled[:n_train],
        shuffled[n_train : n_train + n_valid],
        shuffled[n_train + n_valid :],
    )


def generate_matching_pairs(
    entities: Sequence[object],
    render_left: Renderer,
    render_right: Renderer,
    left_config: PerturbationConfig,
    right_config: PerturbationConfig,
    group_key: GroupKey,
    n_matches: int,
    n_hard_negatives: int,
    n_random_negatives: int,
    rng: random.Random,
) -> list[MatchingPair]:
    """Produce a labeled pair list per the module docstring."""
    if len(entities) < 2:
        raise ValueError("need at least two entities to build pairs")

    pairs: list[MatchingPair] = []
    seen: set[tuple] = set()

    def add_pair(left_entity: object, right_entity: object, label: bool) -> bool:
        left = perturb_row(render_left(left_entity), left_config, rng)
        right = perturb_row(render_right(right_entity), right_config, rng)
        pair = MatchingPair(left=left, right=right, label=label)
        key = pair.key()
        if key in seen:
            return False
        seen.add(key)
        pairs.append(pair)
        return True

    # Matches: same entity, independently dirtied renderings.
    match_pool = list(entities)
    rng.shuffle(match_pool)
    i = 0
    while sum(pair.label for pair in pairs) < n_matches and i < len(match_pool) * 4:
        entity = match_pool[i % len(match_pool)]
        add_pair(entity, entity, True)
        i += 1

    # Hard negatives: different entities from the same blocking group.
    groups: dict[str, list[object]] = defaultdict(list)
    for entity in entities:
        groups[group_key(entity)].append(entity)
    crowded = [members for members in groups.values() if len(members) >= 2]
    attempts = 0
    added_hard = 0
    while added_hard < n_hard_negatives and crowded and attempts < n_hard_negatives * 20:
        attempts += 1
        members = crowded[rng.randrange(len(crowded))]
        left_entity, right_entity = rng.sample(members, 2)
        if add_pair(left_entity, right_entity, False):
            added_hard += 1

    # Random negatives: any two distinct entities.
    attempts = 0
    added_random = 0
    while added_random < n_random_negatives and attempts < n_random_negatives * 20:
        attempts += 1
        left_entity, right_entity = rng.sample(list(entities), 2)
        if add_pair(left_entity, right_entity, False):
            added_random += 1

    rng.shuffle(pairs)
    return pairs


def build_em_dataset(
    name: str,
    entities: Sequence[object],
    attributes: list[str],
    key_attributes: list[str],
    render_left: Renderer,
    render_right: Renderer,
    left_config: PerturbationConfig,
    right_config: PerturbationConfig,
    group_key: GroupKey,
    n_matches: int,
    n_hard_negatives: int,
    n_random_negatives: int,
    seed: int,
    entity_noun: str = "Product",
) -> EntityMatchingDataset:
    """Assemble an :class:`EntityMatchingDataset` with 3:1:1 splits."""
    rng = random.Random(seed)
    pairs = generate_matching_pairs(
        entities=entities,
        render_left=render_left,
        render_right=render_right,
        left_config=left_config,
        right_config=right_config,
        group_key=group_key,
        n_matches=n_matches,
        n_hard_negatives=n_hard_negatives,
        n_random_negatives=n_random_negatives,
        rng=rng,
    )
    train, valid, test = split_3_1_1(pairs, rng)
    return EntityMatchingDataset(
        name=name,
        attributes=attributes,
        key_attributes=key_attributes,
        train=train,
        valid=valid,
        test=test,
        entity_noun=entity_noun,
    )
