"""Data-transformation benchmarks (TDE style).

Two datasets of transform-by-example cases:

* **StackOverflow** — predominantly *syntactic* transformations (the kind
  users ask about on Stack Overflow): name reordering, date reformatting,
  substring extraction.  A search-based synthesizer like TDE handles most
  of these.
* **Bing-QueryLogs** — predominantly *semantic* transformations requiring
  world knowledge (city → state, month name → number, brand alias).  No
  string program derives these; the FM's knowledge does.

Each case carries demonstration pairs (available to every system) and
held-out test pairs; dataset accuracy is the micro-average over all test
pairs, matching how the paper reports a single number per dataset.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.datasets.base import TransformationCase, TransformationDataset
from repro.knowledge.calendar import MONTHS, month_number
from repro.knowledge.world import World, default_world

_FIRST_NAMES = ("John", "Ada", "Maria", "Omar", "Wei", "Tara", "Boris", "Elena",
                "Liam", "Priya", "Stefan", "Rosa", "Hiro", "Nadia")
_LAST_NAMES = ("Doe", "Chen", "Garcia", "Novak", "Silva", "Park", "Weber",
               "Rossi", "Jensen", "Gupta", "Tanaka", "Vargas")
_DOMAINS = ("example.com", "dataworks.io", "acme.org", "labs.dev", "北site.net",
            "query.co", "openshelf.net")
_FILES = ("report.final", "summary.v2", "notes.draft", "archive.backup",
          "photo.edit", "slides.deck")
_EXTENSIONS = ("pdf", "csv", "txt", "xlsx", "png", "json")


def _split_case(
    name: str,
    pairs: list[tuple[str, str]],
    kind: str,
    instruction: str = "",
    n_examples: int = 4,
) -> TransformationCase:
    """First ``n_examples`` pairs become demonstrations, the rest tests."""
    if len(pairs) <= n_examples:
        raise ValueError(f"case {name!r} needs more than {n_examples} pairs")
    return TransformationCase(
        name=name,
        examples=tuple(pairs[:n_examples]),
        tests=tuple(pairs[n_examples:]),
        kind=kind,
        instruction=instruction,
    )


def _apply(inputs: list[str], fn: Callable[[str], str]) -> list[tuple[str, str]]:
    return [(value, fn(value)) for value in inputs]


# ---------------------------------------------------------------------------
# StackOverflow: syntactic cases
# ---------------------------------------------------------------------------

def build_stackoverflow(seed: int = 501, world: World | None = None) -> TransformationDataset:
    del world
    rng = random.Random(seed)
    cases: list[TransformationCase] = []

    def sample_names(n: int) -> list[str]:
        return [
            f"{rng.choice(_LAST_NAMES)}, {rng.choice(_FIRST_NAMES)}" for _ in range(n)
        ]

    # 1. "Doe, John" -> "John Doe"
    cases.append(_split_case(
        "flip_comma_name",
        _apply(sample_names(12), lambda s: f"{s.split(', ')[1]} {s.split(', ')[0]}"),
        "syntactic", instruction="Rewrite each last-name-comma-first-name as first name then last name.",
    ))

    # 2. URL -> bare domain
    urls = [f"https://www.{rng.choice(_DOMAINS)}/p/{rng.randint(1, 999)}" for _ in range(12)]
    cases.append(_split_case(
        "url_to_domain",
        _apply(urls, lambda s: s.split("//www.")[1].split("/")[0]),
        "syntactic", instruction="Extract the bare domain name from each URL.",
    ))

    # 3. ISO date -> US date
    dates = [f"{rng.randint(1999, 2022)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
             for _ in range(12)]
    cases.append(_split_case(
        "iso_to_us_date",
        _apply(dates, lambda s: f"{s[5:7]}/{s[8:10]}/{s[0:4]}"),
        "syntactic", instruction="Convert each ISO date to US MM/DD/YYYY format.",
    ))

    # 4. filename -> extension
    files = [f"{rng.choice(_FILES)}.{rng.choice(_EXTENSIONS)}" for _ in range(12)]
    cases.append(_split_case(
        "file_extension", _apply(files, lambda s: s.rsplit(".", 1)[1]), "syntactic", instruction="Extract the file extension from each filename.",
    ))

    # 5. snake_case -> Title Case
    snakes = ["_".join(rng.sample(("total", "net", "gross", "tax", "unit", "price",
                                   "count", "mean", "max"), rng.randint(2, 3)))
              for _ in range(12)]
    cases.append(_split_case(
        "snake_to_title",
        _apply(snakes, lambda s: " ".join(w.capitalize() for w in s.split("_"))),
        "syntactic", instruction="Convert each snake_case identifier to title case words.",
    ))

    # 6. "(415) 775-7036" -> "415-775-7036"
    phones = [f"({rng.randint(200, 989)}) {rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
              for _ in range(12)]
    cases.append(_split_case(
        "normalize_phone",
        _apply(phones, lambda s: s.replace("(", "").replace(") ", "-")),
        "syntactic", instruction="Normalize each phone number to the 999-999-9999 format.",
    ))

    # 7. zero-pad to width 5
    numbers = [str(rng.randint(1, 9999)) for _ in range(12)]
    cases.append(_split_case(
        "zero_pad", _apply(numbers, lambda s: s.zfill(5)), "syntactic", instruction="Pad each number with zeros to five digits.",
    ))

    # 8. take middle of dash triple
    triples = ["-".join(str(rng.randint(10, 99)) for _ in range(3)) for _ in range(12)]
    cases.append(_split_case(
        "dash_middle", _apply(triples, lambda s: s.split("-")[1]), "syntactic", instruction="Extract the middle segment of each dash-separated code.",
    ))

    # 9. strip currency formatting
    amounts = [f"${rng.randint(1, 9)},{rng.randint(100, 999)}.{rng.randint(10, 99)}"
               for _ in range(12)]
    cases.append(_split_case(
        "strip_currency",
        _apply(amounts, lambda s: s.replace("$", "").replace(",", "")),
        "syntactic", instruction="Strip the currency formatting from each amount.",
    ))

    # 10. full name -> initials ("Ada Chen" -> "A.C.")
    full_names = [f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}" for _ in range(12)]
    cases.append(_split_case(
        "name_initials",
        _apply(full_names, lambda s: "".join(w[0] + "." for w in s.split())),
        "syntactic", instruction="Convert each full name to its initials.",
    ))

    # 11. SEMANTIC outlier in the SO set: "14 March 2005" -> "2005-03-14".
    # Requires knowing month numbers; this is the slice TDE drops.
    month_dates = [
        f"{rng.randint(1, 28)} {rng.choice(MONTHS)} {rng.randint(1999, 2022)}"
        for _ in range(12)
    ]

    def iso_of(s: str) -> str:
        day, month, year = s.split()
        return f"{year}-{month_number(month):02d}-{int(day):02d}"

    cases.append(_split_case(
        "textual_date_to_iso", _apply(month_dates, iso_of), "semantic",
        instruction="Convert each textual date to ISO format.",
    ))

    # 12. weekday abbreviation -> full day name (semantic: the expansion
    # suffix is irregular, so no string program covers it).
    from repro.knowledge.calendar import WEEKDAYS
    weekdays = [(d[:3], d) for d in WEEKDAYS] + [
        (d[:3].upper(), d) for d in WEEKDAYS[:5]
    ]
    rng.shuffle(weekdays)
    cases.append(_split_case(
        "weekday_expand", weekdays[:12], "semantic",
        instruction="Expand each weekday abbreviation to the full day name.",
    ))

    # 13. wrap in quotes and append comma (list building)
    words = [rng.choice(("alpha", "beta", "gamma", "delta", "omega", "sigma",
                         "kappa", "theta")) + str(rng.randint(1, 99)) for _ in range(12)]
    cases.append(_split_case(
        "quote_and_comma", _apply(words, lambda s: f'"{s}",'), "syntactic",
        instruction="Wrap each word in quotes and append a comma.",
    ))

    return TransformationDataset(name="stackoverflow", cases=cases)


# ---------------------------------------------------------------------------
# Bing-QueryLogs: semantic cases
# ---------------------------------------------------------------------------

def build_bing_querylogs(seed: int = 502, world: World | None = None) -> TransformationDataset:
    world = world or default_world()
    rng = random.Random(seed)
    cases: list[TransformationCase] = []
    heads = sorted(world.head_cities, key=lambda c: c.frequency, reverse=True)

    # 1. city -> state abbreviation
    cities = rng.sample(heads[:40], 12)
    cases.append(_split_case(
        "city_to_state", [(c.name, c.state_abbr) for c in cities], "semantic", instruction="Give the US state abbreviation for each city.",
    ))

    # 2. state name -> abbreviation.  Sort before the seeded shuffle:
    # set iteration order follows string hashes, which vary per process
    # unless PYTHONHASHSEED is pinned.
    states = sorted({(c.state_name, c.state_abbr) for c in heads})
    rng.shuffle(states)
    cases.append(_split_case(
        "state_to_abbr", states[:12], "semantic",
        instruction="Give the two-letter abbreviation for each state name.",
    ))

    # 3. month name -> number
    months = [(m, str(i)) for i, m in enumerate(MONTHS, start=1)]
    rng.shuffle(months)
    cases.append(_split_case(
        "month_to_number", months, "semantic",
        instruction="Give the month number for each month name.",
    ))

    # 4. month -> three-letter abbreviation (semantic intent, but a prefix
    # program happens to solve it — the sliver of this dataset a syntactic
    # synthesizer gets right).
    to_abbrev = [(m, m[:3]) for m in MONTHS]
    rng.shuffle(to_abbrev)
    cases.append(_split_case(
        "month_to_abbrev", to_abbrev, "semantic",
        instruction="Give the three-letter abbreviation for each month.",
    ))

    # 5. month abbreviation -> full name
    abbrevs = [(m[:3], m) for m in MONTHS]
    rng.shuffle(abbrevs)
    cases.append(_split_case(
        "month_abbrev_expand", abbrevs, "semantic",
        instruction="Expand each month abbreviation to the full month name.",
    ))

    # 5. city -> primary area code
    cities2 = rng.sample(heads[:40], 12)
    cases.append(_split_case(
        "city_to_area_code",
        [(c.name, c.primary_area_code) for c in cities2],
        "semantic", instruction="Give the telephone area code for each city.",
    ))

    # 6. zip code -> city
    zips = rng.sample([(c.primary_zip, c.name) for c in heads[:40]], 12)
    cases.append(_split_case(
        "zip_to_city", zips, "semantic",
        instruction="Give the city for each zip code.",
    ))

    # 7. "Mar 14, 2011" -> "2011-03-14" (semantic month + syntax)
    def render_date(_):
        month = rng.choice(MONTHS)
        day = rng.randint(1, 28)
        year = rng.randint(1999, 2022)
        return (f"{month[:3]} {day}, {year}",
                f"{year}-{month_number(month):02d}-{day:02d}")

    cases.append(_split_case(
        "us_textual_to_iso", [render_date(i) for i in range(12)], "semantic",
        instruction="Convert each date to ISO format.",
    ))

    # 8. ONE syntactic case — query logs contain some plain reformatting,
    # which is the sliver TDE does solve on this dataset.
    codes = [f"{rng.randint(100, 999)}.{rng.randint(10, 99)}" for _ in range(12)]
    cases.append(_split_case(
        "drop_decimal", _apply(codes, lambda s: s.split(".")[0]), "syntactic",
        instruction="Drop the decimal part of each number.",
    ))

    return TransformationDataset(name="bing_querylogs", cases=cases)
