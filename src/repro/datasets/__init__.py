"""Benchmark datasets.

Synthetic, seeded equivalents of every dataset in the paper's evaluation:

* Entity matching (Magellan benchmark): Fodors-Zagats, Beer, iTunes-Amazon,
  Walmart-Amazon, DBLP-ACM, DBLP-GoogleScholar, Amazon-Google.
* Data imputation: Restaurant (city), Buy (manufacturer).
* Error detection: Hospital (typo corruption), Adult (semantic violations).
* Schema matching: Synthea → OMOP (from the OMAP benchmark).
* Data transformation (TDE benchmark): StackOverflow (syntactic cases),
  Bing-QueryLogs (semantic cases).

Every generator draws entities from :mod:`repro.knowledge`'s shared world,
so the knowledge a large simulated FM can recall is exactly the knowledge
that generated the ground truth — the paper's "encoded knowledge" dynamic.
"""

from repro.datasets.base import (
    EntityMatchingDataset,
    ErrorDetectionDataset,
    ErrorExample,
    ImputationDataset,
    ImputationExample,
    MatchingPair,
    SchemaMatchingDataset,
    SchemaPair,
    TransformationCase,
    TransformationDataset,
)
from repro.datasets.table import Table
from repro.datasets.registry import (
    DATASET_BUILDERS,
    available_datasets,
    load_dataset,
)
from repro.datasets.scale import scale_dataset

__all__ = [
    "DATASET_BUILDERS",
    "EntityMatchingDataset",
    "ErrorDetectionDataset",
    "ErrorExample",
    "ImputationDataset",
    "ImputationExample",
    "MatchingPair",
    "SchemaMatchingDataset",
    "SchemaPair",
    "Table",
    "TransformationCase",
    "TransformationDataset",
    "available_datasets",
    "load_dataset",
    "scale_dataset",
]
