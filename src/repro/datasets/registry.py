"""Dataset registry: name → builder."""

from __future__ import annotations

from collections.abc import Callable

from repro.datasets.em_datasets import EM_BUILDERS
from repro.datasets.error_datasets import build_adult, build_hospital
from repro.datasets.imputation_datasets import build_buy, build_restaurant_dataset
from repro.datasets.synthea_dataset import build_synthea
from repro.datasets.transformations import build_bing_querylogs, build_stackoverflow

#: name → builder(seed=..., world=...) for every benchmark dataset.
DATASET_BUILDERS: dict[str, Callable] = {
    **EM_BUILDERS,
    "restaurant": build_restaurant_dataset,
    "buy": build_buy,
    "hospital": build_hospital,
    "adult": build_adult,
    "synthea": build_synthea,
    "stackoverflow": build_stackoverflow,
    "bing_querylogs": build_bing_querylogs,
}


def available_datasets() -> list[str]:
    """All registered dataset names, sorted."""
    return sorted(DATASET_BUILDERS)


def load_dataset(
    name: str,
    seed: int | None = None,
    world=None,
    scale: int | None = None,
):
    """Build the dataset called ``name``.

    ``seed`` overrides the builder's canonical seed (use this only for
    robustness studies — the canonical seeds define the benchmark).
    ``scale`` stretches the test split to that many rows (EM/ED/DI only;
    see :func:`repro.datasets.scale.scale_dataset`) — the knob behind
    ``repro run --scale`` and sharded runs.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        known = ", ".join(available_datasets())
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    if world is not None:
        kwargs["world"] = world
    dataset = builder(**kwargs)
    if scale is not None:
        from repro.datasets.scale import scale_dataset

        dataset = scale_dataset(dataset, int(scale))
    return dataset
