"""Error-detection datasets: Hospital and Adult.

Hospital reproduces the classic data-cleaning benchmark's corruption style:
a single character of a cell replaced by ``x`` ("bxrmingham").  Adult uses
semantic violations — a categorical value swapped in from the wrong domain,
or a numeric value pushed far out of range.

Following the paper (and HoloDetect's few-shot setting), Hospital's train
split is deliberately tiny (100 examples).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import ErrorDetectionDataset, ErrorExample
from repro.datasets.perturb import corrupt_char_x
from repro.datasets.table import Row
from repro.knowledge.census import ADULT_DOMAINS
from repro.knowledge.medical import CONDITIONS_MEASURES, HOSPITAL_NAME_PARTS
from repro.knowledge.world import World, default_world

HOSPITAL_ATTRIBUTES = [
    "provider_number", "hospital_name", "address", "city", "state",
    "zip_code", "county", "phone", "condition", "measure_name",
]

ADULT_ATTRIBUTES = [
    "age", "workclass", "education", "marital_status", "occupation",
    "race", "sex", "hours_per_week", "country", "income",
]


def _make_hospital_rows(world: World, n_rows: int, rng: random.Random) -> list[Row]:
    rows: list[Row] = []
    conditions = CONDITIONS_MEASURES
    for i in range(n_rows):
        city = world.head_cities[rng.randrange(len(world.head_cities))]
        condition, measures = conditions[rng.randrange(len(conditions))]
        rows.append({
            "provider_number": str(10000 + i),
            "hospital_name": f"{city.name.lower()} {rng.choice(HOSPITAL_NAME_PARTS)} hospital",
            "address": f"{rng.randint(1, 9999)} {rng.choice(('main st', 'oak ave', 'hospital dr', 'medical center blvd'))}",
            "city": city.name.lower(),
            "state": city.state_abbr.lower(),
            "zip_code": rng.choice(city.zip_codes),
            "county": f"{city.name.lower()} county",
            "phone": f"{city.primary_area_code}{rng.randint(2000000, 9999999)}",
            "condition": condition,
            "measure_name": rng.choice(measures),
        })
    return rows


@dataclass
class _InjectedCell:
    row_index: int
    attribute: str
    dirty_value: str
    clean_value: str


def _inject_x_errors(
    rows: list[Row], attributes: list[str], error_rate: float, rng: random.Random
) -> tuple[list[Row], list[_InjectedCell]]:
    """Corrupt ``error_rate`` of cells by single-char 'x' substitution."""
    dirty_rows = [dict(row) for row in rows]
    injected: list[_InjectedCell] = []
    for i, row in enumerate(dirty_rows):
        for attribute in attributes:
            value = row[attribute]
            if value is None or rng.random() >= error_rate:
                continue
            dirty = corrupt_char_x(value, rng)
            if dirty == value:  # the replaced char happened to be 'x'
                continue
            row[attribute] = dirty
            injected.append(_InjectedCell(i, attribute, dirty, value))
    return dirty_rows, injected


def _to_examples(
    dirty_rows: list[Row],
    attributes: list[str],
    injected: list[_InjectedCell],
    clean_rows: list[Row],
) -> list[ErrorExample]:
    """One example per (row, attribute) cell, labeled by injection."""
    dirty_cells = {(cell.row_index, cell.attribute): cell for cell in injected}
    examples: list[ErrorExample] = []
    for i, row in enumerate(dirty_rows):
        for attribute in attributes:
            if row[attribute] is None:
                continue
            cell = dirty_cells.get((i, attribute))
            examples.append(
                ErrorExample(
                    row=row,
                    attribute=attribute,
                    label=cell is not None,
                    clean_value=cell.clean_value if cell else clean_rows[i][attribute],
                )
            )
    return examples


def build_hospital(
    seed: int = 301,
    world: World | None = None,
    n_rows: int = 220,
    error_rate: float = 0.05,
    n_train_examples: int = 100,
) -> ErrorDetectionDataset:
    """The Hospital ED dataset with 'x'-substitution corruption."""
    world = world or default_world()
    rng = random.Random(seed)
    clean_rows = _make_hospital_rows(world, n_rows, rng)
    dirty_rows, injected = _inject_x_errors(clean_rows, HOSPITAL_ATTRIBUTES, error_rate, rng)
    examples = _to_examples(dirty_rows, HOSPITAL_ATTRIBUTES, injected, clean_rows)
    rng.shuffle(examples)

    # Keep the train split small but not error-free: few-shot systems need
    # at least a handful of positive demonstrations.
    positives = [example for example in examples if example.label]
    negatives = [example for example in examples if not example.label]
    n_train_pos = max(5, int(n_train_examples * len(positives) / len(examples)))
    train = positives[:n_train_pos] + negatives[: n_train_examples - n_train_pos]
    rest = positives[n_train_pos:] + negatives[n_train_examples - n_train_pos :]
    rng.shuffle(train)
    rng.shuffle(rest)
    n_valid = len(rest) // 10
    return ErrorDetectionDataset(
        name="hospital",
        attributes=HOSPITAL_ATTRIBUTES,
        train=train,
        valid=rest[:n_valid],
        test=rest[n_valid:],
        clean_rows=clean_rows,
    )


def _make_adult_rows(n_rows: int, rng: random.Random) -> list[Row]:
    rows: list[Row] = []
    for _ in range(n_rows):
        education = rng.choice(ADULT_DOMAINS["education"])
        rows.append({
            "age": str(rng.randint(17, 90)),
            "workclass": rng.choice(ADULT_DOMAINS["workclass"]),
            "education": education,
            "marital_status": rng.choice(ADULT_DOMAINS["marital_status"]),
            "occupation": rng.choice(ADULT_DOMAINS["occupation"]),
            "race": rng.choice(ADULT_DOMAINS["race"]),
            "sex": rng.choice(ADULT_DOMAINS["sex"]),
            "hours_per_week": str(rng.randint(1, 99)),
            "country": rng.choice(ADULT_DOMAINS["country"]),
            "income": rng.choice(ADULT_DOMAINS["income"]),
        })
    return rows


def _inject_adult_errors(
    rows: list[Row], error_rate: float, rng: random.Random
) -> tuple[list[Row], list[_InjectedCell]]:
    """Semantic violations: cross-domain category swaps, absurd numbers."""
    dirty_rows = [dict(row) for row in rows]
    injected: list[_InjectedCell] = []
    categorical = list(ADULT_DOMAINS)
    for i, row in enumerate(dirty_rows):
        for attribute in ADULT_ATTRIBUTES:
            if rng.random() >= error_rate:
                continue
            clean = row[attribute]
            if attribute in ("age", "hours_per_week"):
                dirty = str(rng.choice((rng.randint(150, 999), -rng.randint(1, 50))))
            else:
                # Swap in a value from a *different* attribute's domain.
                other = rng.choice([a for a in categorical if a != attribute])
                dirty = rng.choice(ADULT_DOMAINS[other])
                if dirty in ADULT_DOMAINS.get(attribute, ()):
                    continue
            row[attribute] = dirty
            injected.append(_InjectedCell(i, attribute, dirty, clean))
    return dirty_rows, injected


def build_adult(
    seed: int = 302,
    world: World | None = None,
    n_rows: int = 150,
    error_rate: float = 0.04,
) -> ErrorDetectionDataset:
    """The Adult ED dataset with semantic-violation errors.

    ``world`` is accepted for registry uniformity but unused: the census
    domain is self-contained.  The paper evaluates on a 1K-row sample of
    Adult; here 150 rows × 10 attributes ≈ 1.5K cell examples.
    """
    del world
    rng = random.Random(seed)
    clean_rows = _make_adult_rows(n_rows, rng)
    dirty_rows, injected = _inject_adult_errors(clean_rows, error_rate, rng)
    examples = _to_examples(dirty_rows, ADULT_ATTRIBUTES, injected, clean_rows)
    rng.shuffle(examples)
    n_train = int(len(examples) * 0.4)
    n_valid = int(len(examples) * 0.1)
    return ErrorDetectionDataset(
        name="adult",
        attributes=ADULT_ATTRIBUTES,
        train=examples[:n_train],
        valid=examples[n_train : n_train + n_valid],
        test=examples[n_train + n_valid :],
        clean_rows=clean_rows,
    )
