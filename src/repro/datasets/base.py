"""Typed example containers and dataset classes for the five tasks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.table import Row
from repro.knowledge.medical import SchemaAttribute


# ---------------------------------------------------------------------------
# Entity matching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchingPair:
    """One labeled entity-matching example: do two rows co-refer?"""

    left: Row
    right: Row
    label: bool

    def key(self) -> tuple:
        """Hashable identity of the pair (used for dedup in generators)."""
        return (
            tuple(sorted((k, v) for k, v in self.left.items())),
            tuple(sorted((k, v) for k, v in self.right.items())),
        )


@dataclass
class EntityMatchingDataset:
    """A Magellan-style EM dataset with fixed train/valid/test splits.

    ``attributes`` is the full schema of both sides; ``key_attributes`` is
    the informative subset the paper's attribute-selection step keeps
    (Section 4.3 / Table 4).
    """

    name: str
    attributes: list[str]
    key_attributes: list[str]
    train: list[MatchingPair]
    valid: list[MatchingPair]
    test: list[MatchingPair]
    entity_noun: str = "Product"

    def __post_init__(self):
        unknown = set(self.key_attributes) - set(self.attributes)
        if unknown:
            raise ValueError(f"key attributes not in schema: {sorted(unknown)}")

    @property
    def task(self) -> str:
        return "entity_matching"

    def split(self, name: str) -> list[MatchingPair]:
        try:
            return {"train": self.train, "valid": self.valid, "test": self.test}[name]
        except KeyError:
            raise KeyError(f"unknown split {name!r}") from None


# ---------------------------------------------------------------------------
# Error detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ErrorExample:
    """One cell-level error-detection example.

    ``row`` is the (possibly dirty) row as observed; ``attribute`` the cell
    under scrutiny; ``label`` True iff the cell is erroneous;
    ``clean_value`` the ground-truth repair (available to oracle analyses,
    never shown to systems at prediction time).
    """

    row: Row
    attribute: str
    label: bool
    clean_value: str | None = None


@dataclass
class ErrorDetectionDataset:
    """Cell-level ED dataset with train/valid/test example splits."""

    name: str
    attributes: list[str]
    train: list[ErrorExample]
    valid: list[ErrorExample]
    test: list[ErrorExample]
    #: Clean reference rows (the generator's pristine table) for systems
    #: like HoloClean that learn statistics from the dataset itself.
    clean_rows: list[Row] = field(default_factory=list)

    @property
    def task(self) -> str:
        return "error_detection"

    def split(self, name: str) -> list[ErrorExample]:
        try:
            return {"train": self.train, "valid": self.valid, "test": self.test}[name]
        except KeyError:
            raise KeyError(f"unknown split {name!r}") from None


# ---------------------------------------------------------------------------
# Data imputation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ImputationExample:
    """One imputation example: fill ``attribute`` of ``row``.

    ``row`` has the target attribute already removed/NULLed; ``answer`` is
    the ground truth.
    """

    row: Row
    attribute: str
    answer: str


@dataclass
class ImputationDataset:
    """DI dataset: complete training rows plus held-out examples."""

    name: str
    attributes: list[str]
    target_attribute: str
    train: list[ImputationExample]
    valid: list[ImputationExample]
    test: list[ImputationExample]
    #: Complete rows (target attribute included) the supervised baselines
    #: train on.
    complete_train_rows: list[Row] = field(default_factory=list)

    @property
    def task(self) -> str:
        return "imputation"

    def split(self, name: str) -> list[ImputationExample]:
        try:
            return {"train": self.train, "valid": self.valid, "test": self.test}[name]
        except KeyError:
            raise KeyError(f"unknown split {name!r}") from None


# ---------------------------------------------------------------------------
# Schema matching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SchemaPair:
    """One schema-matching example: do two attributes correspond?"""

    left: SchemaAttribute
    right: SchemaAttribute
    label: bool


@dataclass
class SchemaMatchingDataset:
    """SM dataset over a (source schema, target schema) pair."""

    name: str
    train: list[SchemaPair]
    valid: list[SchemaPair]
    test: list[SchemaPair]

    @property
    def task(self) -> str:
        return "schema_matching"

    def split(self, name: str) -> list[SchemaPair]:
        try:
            return {"train": self.train, "valid": self.valid, "test": self.test}[name]
        except KeyError:
            raise KeyError(f"unknown split {name!r}") from None


# ---------------------------------------------------------------------------
# Data transformation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransformationCase:
    """One transform-by-example case (one row of the TDE benchmark).

    ``examples`` are the demonstration input/output pairs every system may
    consume; ``tests`` are the held-out pairs accuracy is measured on.
    ``kind`` is ``"syntactic"`` (string manipulation suffices) or
    ``"semantic"`` (requires world knowledge) — the axis on which TDE and
    the FM trade places.
    """

    name: str
    examples: tuple[tuple[str, str], ...]
    tests: tuple[tuple[str, str], ...]
    kind: str = "syntactic"
    #: Natural-language task description used for zero-shot prompting.
    instruction: str = ""

    def __post_init__(self):
        if self.kind not in ("syntactic", "semantic"):
            raise ValueError(f"unknown case kind {self.kind!r}")
        if not self.examples or not self.tests:
            raise ValueError(f"case {self.name!r} needs examples and tests")


@dataclass
class TransformationDataset:
    """A collection of transformation cases; accuracy averages over tests."""

    name: str
    cases: list[TransformationCase]

    @property
    def task(self) -> str:
        return "transformation"

    @property
    def n_tests(self) -> int:
        return sum(len(case.tests) for case in self.cases)
