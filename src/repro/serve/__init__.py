"""repro.serve — the persistent, multi-tenant wrangling gateway.

One long-lived process in front of the task engine: requests arrive
(HTTP or in-process), pass per-tenant budget and rate gates, wait in a
bounded priority queue, and are coalesced — same task + dataset +
model + prompt config → one micro-batch through the continuous-batching
executor and the shared demonstration-prefix cache — before being
served by the same engine path the offline CLI uses.  Predictions are
byte-identical to ``run_task`` on the same examples (see DESIGN §4d).

Layers:

* :mod:`repro.serve.request` — :class:`WrangleRequest` /
  :class:`WrangleResponse` / typed :class:`ShedResponse`, plus the
  bounded priority :class:`RequestQueue`.
* :mod:`repro.serve.tenancy` — per-tenant token-bucket rate limits and
  request budgets (:class:`TenantPolicy`, :class:`TenantRegistry`).
* :mod:`repro.serve.gateway` — the :class:`Gateway` itself (dispatcher
  thread, coalescing scheduler, stats) and the in-process
  :class:`GatewayClient`.
* :mod:`repro.serve.http` — the stdlib HTTP front end behind
  ``repro serve`` (``/v1/wrangle``, ``/healthz``, ``/stats``).
* :mod:`repro.serve.journal` — the durable intake journal behind
  ``repro serve --journal DIR``: accepted-but-unserved requests survive
  a crash and ``--resume`` replays them exactly once.
"""

from repro.serve.codec import RowDecodeError
from repro.serve.gateway import Gateway, GatewayClient, GatewayConfig
from repro.serve.http import GatewayHTTPServer, serve_http
from repro.serve.journal import IntakeJournal
from repro.serve.request import (
    QueueFull,
    RequestQueue,
    ShedResponse,
    WrangleRequest,
    WrangleResponse,
)
from repro.serve.tenancy import TenantPolicy, TenantRegistry, TokenBucket

__all__ = [
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayHTTPServer",
    "IntakeJournal",
    "QueueFull",
    "RequestQueue",
    "RowDecodeError",
    "ShedResponse",
    "TenantPolicy",
    "TenantRegistry",
    "TokenBucket",
    "WrangleRequest",
    "WrangleResponse",
    "serve_http",
]
