"""Decode inline request rows into typed task examples.

The dataset/indices request shape needs no codec — examples come from
the loaded dataset itself, exactly as the offline path reads them.
Inline ``rows`` cover the interactive shape ("match these two records
now") for the tasks whose examples are plain row payloads; the decoded
objects feed the same ``build_suffix``/``build_prompt`` the dataset
examples do, so the determinism guarantee carries over unchanged.

Validation is typed and eager: a malformed row — missing field, wrong
type, oversized cell — raises :class:`RowDecodeError` naming the row
position and offending field, never a bare ``KeyError`` from deep
inside a decoder.  ``RowDecodeError`` subclasses ``ValueError`` so the
HTTP front end's existing 400 path catches it unchanged.
"""

from __future__ import annotations

from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair

__all__ = [
    "MAX_CELL_CHARS",
    "RowDecodeError",
    "decode_rows",
    "encode_prediction",
]

#: Upper bound on one serialized cell value — a row is a handful of
#: short attributes, not a document; anything bigger is a malformed or
#: adversarial payload that would bloat the prompt past any budget.
MAX_CELL_CHARS = 8192


class RowDecodeError(ValueError):
    """An inline row failed validation (missing field / wrong type /
    oversized cell).  The message names the row position and field."""


def _checked_record(value, label: str) -> dict:
    """Validate one attribute map: a dict of scalar, size-capped cells."""
    if not isinstance(value, dict):
        raise RowDecodeError(
            f"{label} must be an object of attribute -> value, "
            f"got {type(value).__name__}"
        )
    record = {}
    for key, cell in value.items():
        if cell is not None and not isinstance(cell, (bool, int, float, str)):
            raise RowDecodeError(
                f"{label} cell {key!r} must be a scalar or null, "
                f"got {type(cell).__name__}"
            )
        if isinstance(cell, str) and len(cell) > MAX_CELL_CHARS:
            raise RowDecodeError(
                f"{label} cell {key!r} is {len(cell)} characters "
                f"(limit {MAX_CELL_CHARS})"
            )
        record[str(key)] = cell
    return record


def _required(row: dict, name: str, label: str):
    if name not in row:
        raise RowDecodeError(f"{label} is missing required field {name!r}")
    return row[name]


def _checked_str(value, label: str) -> str:
    if not isinstance(value, str):
        raise RowDecodeError(
            f"{label} must be a string, got {type(value).__name__}"
        )
    if len(value) > MAX_CELL_CHARS:
        raise RowDecodeError(
            f"{label} is {len(value)} characters (limit {MAX_CELL_CHARS})"
        )
    return value


def _decode_matching(row: dict, label: str) -> MatchingPair:
    return MatchingPair(
        left=_checked_record(_required(row, "left", label), f"{label}.left"),
        right=_checked_record(
            _required(row, "right", label), f"{label}.right"
        ),
        label=bool(row.get("label", False)),
    )


def _decode_error(row: dict, label: str) -> ErrorExample:
    return ErrorExample(
        row=_checked_record(_required(row, "row", label), f"{label}.row"),
        attribute=_checked_str(
            _required(row, "attribute", label), f"{label}.attribute"
        ),
        label=bool(row.get("label", False)),
        clean_value=row.get("clean_value"),
    )


def _decode_imputation(row: dict, label: str) -> ImputationExample:
    return ImputationExample(
        row=_checked_record(_required(row, "row", label), f"{label}.row"),
        attribute=_checked_str(
            _required(row, "attribute", label), f"{label}.attribute"
        ),
        answer=str(row.get("answer", "")),
    )


_DECODERS = {
    "entity_matching": _decode_matching,
    "error_detection": _decode_error,
    "imputation": _decode_imputation,
}


def decode_rows(task: str, rows: list[dict]) -> list:
    """Typed examples for ``rows``; :class:`RowDecodeError` on any
    malformed row, ``ValueError`` for tasks whose examples cannot be
    expressed as inline payloads (use indices)."""
    decoder = _DECODERS.get(task)
    if decoder is None:
        raise ValueError(
            f"task {task!r} does not accept inline rows; "
            "submit dataset indices instead"
        )
    decoded = []
    for position, row in enumerate(rows):
        label = f"row[{position}]"
        if not isinstance(row, dict):
            raise RowDecodeError(
                f"{label} must be an object, got {type(row).__name__}"
            )
        try:
            decoded.append(decoder(row, label))
        except RowDecodeError:
            raise
        except (KeyError, TypeError) as exc:
            raise RowDecodeError(f"malformed {label}: {exc}") from exc
    return decoded


def encode_prediction(prediction) -> object:
    """JSON-safe rendering of one engine prediction."""
    if prediction is None or isinstance(prediction, (bool, int, float, str)):
        return prediction
    return str(prediction)
