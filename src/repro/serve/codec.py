"""Decode inline request rows into typed task examples.

The dataset/indices request shape needs no codec — examples come from
the loaded dataset itself, exactly as the offline path reads them.
Inline ``rows`` cover the interactive shape ("match these two records
now") for the tasks whose examples are plain row payloads; the decoded
objects feed the same ``build_suffix``/``build_prompt`` the dataset
examples do, so the determinism guarantee carries over unchanged.
"""

from __future__ import annotations

from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair

__all__ = ["decode_rows", "encode_prediction"]


def _decode_matching(row: dict) -> MatchingPair:
    return MatchingPair(
        left=dict(row["left"]),
        right=dict(row["right"]),
        label=bool(row.get("label", False)),
    )


def _decode_error(row: dict) -> ErrorExample:
    return ErrorExample(
        row=dict(row["row"]),
        attribute=str(row["attribute"]),
        label=bool(row.get("label", False)),
        clean_value=row.get("clean_value"),
    )


def _decode_imputation(row: dict) -> ImputationExample:
    return ImputationExample(
        row=dict(row["row"]),
        attribute=str(row["attribute"]),
        answer=str(row.get("answer", "")),
    )


_DECODERS = {
    "entity_matching": _decode_matching,
    "error_detection": _decode_error,
    "imputation": _decode_imputation,
}


def decode_rows(task: str, rows: list[dict]) -> list:
    """Typed examples for ``rows``, or ``ValueError`` for tasks whose
    examples cannot be expressed as inline payloads (use indices)."""
    decoder = _DECODERS.get(task)
    if decoder is None:
        raise ValueError(
            f"task {task!r} does not accept inline rows; "
            "submit dataset indices instead"
        )
    try:
        return [decoder(row) for row in rows]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed row for task {task!r}: {exc}") from exc


def encode_prediction(prediction) -> object:
    """JSON-safe rendering of one engine prediction."""
    if prediction is None or isinstance(prediction, (bool, int, float, str)):
        return prediction
    return str(prediction)
