"""Per-tenant budgets and token-bucket rate limits.

The gateway's first gate: before a request touches the queue, its
tenant must have (a) rate-limit tokens for the examples it carries and
(b) remaining request budget.  Both checks happen at submit time, on
the caller's thread, so a flooding tenant is pushed back immediately —
with a typed :class:`~repro.serve.request.ShedResponse`, never a
silent drop — instead of poisoning the queue for everyone else.

These are *tenant* controls; the gateway-wide
:class:`~repro.api.resilience.AdmissionController` (priority classes,
breaker/budget headroom) still guards the serving fan-out underneath.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["TenantPolicy", "TenantRegistry", "TenantState", "TokenBucket"]


class TokenBucket:
    """Classic token bucket; one token per example.

    ``rate`` tokens refill per second up to ``burst``.  ``rate=None``
    disables limiting.  The clock is injectable so tests can advance
    time without sleeping.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock=time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = burst if burst is not None else (rate or 0.0)
        self.clock = clock
        self._tokens = float(self.burst)
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if self.rate is None:
            return True
        now = self.clock()
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def available(self) -> float:
        if self.rate is None:
            return float("inf")
        self._refill(self.clock())
        return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is allowed to spend.

    * ``max_requests`` — lifetime request budget (``None`` = unlimited).
    * ``rate`` — examples per second through the token bucket
      (``None`` = unlimited); ``burst`` defaults to one second's rate.
    """

    max_requests: int | None = None
    rate: float | None = None
    burst: float | None = None


class TenantState:
    """Live counters + bucket for one tenant."""

    def __init__(self, name: str, policy: TenantPolicy, clock=time.monotonic):
        self.name = name
        self.policy = policy
        self.bucket = TokenBucket(policy.rate, policy.burst, clock=clock)
        self.n_submitted = 0
        self.n_admitted = 0
        self.n_shed = 0
        self.n_completed = 0
        self.n_examples = 0

    def stats(self) -> dict:
        return {
            "n_submitted": self.n_submitted,
            "n_admitted": self.n_admitted,
            "n_shed": self.n_shed,
            "n_completed": self.n_completed,
            "n_examples": self.n_examples,
            "budget_remaining": (
                None
                if self.policy.max_requests is None
                else max(0, self.policy.max_requests - self.n_admitted)
            ),
        }


class TenantRegistry:
    """All tenants the gateway knows, lazily created under one policy.

    ``policies`` pins named tenants to explicit policies; anyone else
    gets ``default``.  Thread-safe: submit-time checks run on caller
    threads.
    """

    def __init__(
        self,
        policies: dict[str, TenantPolicy] | None = None,
        default: TenantPolicy | None = None,
        clock=time.monotonic,
    ):
        self.default = default if default is not None else TenantPolicy()
        self.clock = clock
        self._policies = dict(policies or {})
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                policy = self._policies.get(name, self.default)
                state = TenantState(name, policy, clock=self.clock)
                self._tenants[name] = state
            return state

    def admit(self, name: str, n_examples: int) -> str | None:
        """Submit-time gate: returns a shed reason or ``None`` to admit."""
        state = self.get(name)
        with self._lock:
            state.n_submitted += 1
            policy = state.policy
            if (
                policy.max_requests is not None
                and state.n_admitted >= policy.max_requests
            ):
                state.n_shed += 1
                return "tenant_budget"
            if not state.bucket.try_acquire(n_examples):
                state.n_shed += 1
                return "tenant_rate"
            state.n_admitted += 1
            state.n_examples += n_examples
            return None

    def record_shed(self, name: str) -> None:
        """A post-admission shed (eviction, deadline, admission gate)."""
        state = self.get(name)
        with self._lock:
            state.n_shed += 1

    def record_completed(self, name: str) -> None:
        state = self.get(name)
        with self._lock:
            state.n_completed += 1

    def stats(self) -> dict[str, dict]:
        with self._lock:
            return {
                name: state.stats()
                for name, state in sorted(self._tenants.items())
            }
