"""The gateway: dispatcher thread, coalescing scheduler, stats.

Life of a request: ``submit`` runs the tenant gates (rate bucket,
budget) on the caller's thread and either returns a resolved
:class:`~repro.serve.request.ShedResponse` future or parks the request
in the bounded priority queue.  A single dispatcher thread drains the
queue: it expires stale waiters, pops the head request plus every
compatible follower (same :attr:`~repro.serve.request.WrangleRequest.
group_key` → same demonstration prefix and model), resolves the group's
:class:`~repro.core.tasks.engine.ServingContext` once (cached), and
serves the coalesced examples through
:func:`~repro.core.tasks.engine.serve_group` — the identical engine
path the offline CLI takes, which is why gateway predictions are
byte-identical to ``run_task``.

Fairness is a property of the *dispatcher*, not the executor: strict
priority order with FIFO within a class is decided sequentially by one
thread, so shed sets and serve order are the same at 1 worker or 8 —
workers only parallelize completions inside a micro-batch, whose
results come back in input order regardless.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.api.resilience import PRIORITIES
from repro.api.usage import UsageTracker
from repro.core.tasks.engine import (
    resolve_serving_context,
    serve_group,
)
from repro.serve.codec import decode_rows, encode_prediction
from repro.serve.request import (
    QueueEntry,
    QueueFull,
    RequestQueue,
    ShedResponse,
    WrangleRequest,
    WrangleResponse,
)
from repro.serve.tenancy import TenantPolicy, TenantRegistry

__all__ = ["Gateway", "GatewayClient", "GatewayConfig"]

#: Shed-reason vocabulary the stats block tallies.
SHED_REASONS = (
    "tenant_rate", "tenant_budget", "queue_full", "queue_evicted",
    "deadline", "admission", "shutdown", "client_timeout",
)


@dataclass
class GatewayConfig:
    """Tunables for one gateway instance."""

    queue_capacity: int = 64
    max_batch: int = 64
    workers: int | None = None
    executor: str | None = "async"
    max_request_log: int = 2048
    latency_window: int = 4096
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    deadline_default_s: float | None = None
    idle_wait_s: float = 0.05

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


class Gateway:
    """Long-lived multi-tenant serving front for the task engine.

    ``clock`` is injectable (tests drive deadline expiry without
    sleeping); everything else observable — shed sets, serve order,
    predictions — is deterministic for a fixed submission order.
    """

    def __init__(self, config: GatewayConfig | None = None,
                 admission=None, clock=time.monotonic, journal=None,
                 resume: bool = True):
        self.config = config if config is not None else GatewayConfig()
        self.clock = clock
        self.admission = admission
        self.journal = journal
        # With resume off, pending journal entries are left untouched
        # (a later --resume start still picks them up).
        self._resume = resume
        self.tenants = TenantRegistry(
            self.config.tenants, self.config.default_tenant, clock=clock
        )
        self.usage = UsageTracker(max_request_log=self.config.max_request_log)
        self.queue = RequestQueue(self.config.queue_capacity, clock=clock)
        self._contexts: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._work = threading.Event()
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread: threading.Thread | None = None
        # Fresh ids start above anything the journal has seen, so a
        # replayed request can keep its original id without collision.
        self._next_id = 0 if journal is None else journal.max_request_id
        self._n_replayed = 0
        self._started_at: float | None = None
        # Tallies (all under _lock).
        self._shed_by_reason = {reason: 0 for reason in SHED_REASONS}
        self._served_by_priority = {priority: 0 for priority in PRIORITIES}
        self._n_batches = 0
        self._n_coalesced = 0
        self._n_completed = 0
        self._n_failed_examples = 0
        self._latencies_by_priority: dict[str, list[float]] = {
            priority: [] for priority in PRIORITIES
        }

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._started_at = self.clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-gateway-dispatch",
            daemon=True,
        )
        self._thread.start()
        if self.journal is not None and self._resume:
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Re-enqueue accepted-but-unserved requests from the journal.

        Replays bypass the tenant gates — admission already happened
        (and was journaled) before the crash; charging a second
        rate-bucket slot would punish the tenant for our failure.
        Original request ids are preserved so the journal's terminal
        records line up, and fresh traffic allocates above them.
        """
        for request_id, payload in self.journal.pending_requests():
            try:
                request = WrangleRequest(**payload)
            except (TypeError, ValueError) as exc:
                # A journal from an older schema or a corrupted payload:
                # mark terminal so it never replays again.
                self.journal.record_terminal(
                    request_id, "failed", detail=f"unreplayable: {exc}"
                )
                continue
            now = self.clock()
            deadline_s = request.deadline_s
            if deadline_s is None:
                deadline_s = self.config.deadline_default_s
            entry = QueueEntry(
                request_id=request_id,
                request=request,
                future=Future(),
                enqueued_at=now,
                expires_at=(None if deadline_s is None else now + deadline_s),
            )
            try:
                with self._lock:
                    evicted = self.queue.push(entry)
                    self._n_replayed += 1
            except QueueFull:
                self._resolve_shed(
                    entry, "queue_full",
                    "queue at capacity during journal replay",
                )
                continue
            if evicted is not None:
                self._resolve_shed(
                    evicted, "queue_evicted", "evicted by journal replay"
                )
        self._work.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Drain-stop: in-queue requests are shed with ``"shutdown"``."""
        if self._thread is None:
            return
        self._stop.set()
        self._work.set()
        self._thread.join(timeout=timeout)
        self._thread = None
        with self._lock:
            drained = self.queue.drain()
        for entry in drained:
            self._resolve_shed(entry, "shutdown", "gateway stopping")

    def pause(self) -> None:
        """Suspend dispatch (requests queue but are not served).

        Deterministic-testing hook: lets a caller build a known queue
        state — a backfill flood, an interactive arrival — before any
        of it is drained, so shed sets can be asserted exactly.
        """
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()
        self._work.set()

    def __enter__(self) -> Gateway:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ---------------------------------------------------

    def submit(self, request: WrangleRequest) -> Future:
        """Queue ``request``; the future resolves to a
        :class:`WrangleResponse` or :class:`ShedResponse`."""
        future: Future = Future()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
        # The id rides the future so a caller that gives up waiting can
        # name the request it wants cancelled (see serve/http.py).
        future.request_id = request_id
        if self._thread is None or self._stop.is_set():
            self._count_shed("shutdown")
            future.set_result(ShedResponse(
                request_id, request.tenant, "shutdown", "gateway not running"
            ))
            return future
        reason = self.tenants.admit(request.tenant, request.n_examples)
        if reason is not None:
            self._count_shed(reason)
            future.set_result(ShedResponse(
                request_id, request.tenant, reason,
                f"tenant {request.tenant!r} refused at submit",
            ))
            return future
        now = self.clock()
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.deadline_default_s
        entry = QueueEntry(
            request_id=request_id,
            request=request,
            future=future,
            enqueued_at=now,
            expires_at=(None if deadline_s is None else now + deadline_s),
        )
        evicted = None
        try:
            with self._lock:
                evicted = self.queue.push(entry)
                # Journal acceptance under the same lock that admitted
                # the entry: the dispatcher (which also pops under
                # _lock) cannot serve it before the accepted line is
                # durable, so a crash never orphans an accepted-but-
                # unjournaled request.
                if self.journal is not None:
                    self.journal.record_accepted(
                        request_id, dataclasses.asdict(request)
                    )
        except QueueFull:
            self.tenants.record_shed(request.tenant)
            self._count_shed("queue_full")
            future.set_result(ShedResponse(
                request_id, request.tenant, "queue_full",
                f"queue at capacity {self.config.queue_capacity}",
            ))
            return future
        if evicted is not None:
            self.tenants.record_shed(evicted.request.tenant)
            self._resolve_shed(
                evicted, "queue_evicted",
                f"evicted by {request.priority!r} arrival",
            )
        self._work.set()
        return future

    def cancel(self, request_id: int, reason: str = "client_timeout",
               detail: str = "client abandoned request") -> bool:
        """Shed a still-queued request whose caller gave up waiting.

        Returns True when the request was waiting and is now shed with
        ``reason`` (typed, counted, journaled); False when it already
        dispatched or resolved — in that case its result simply goes
        unread, but the work is not double-counted or re-served.
        """
        with self._lock:
            entry = self.queue.remove(request_id)
        if entry is None:
            return False
        self.tenants.record_shed(entry.request.tenant)
        self._resolve_shed(entry, reason, detail)
        return True

    # -- dispatch -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        # Deadline expiry must fire on *every* wake-up — including the
        # paused branch, which used to skip _dispatch_once entirely and
        # let expired entries sit in the queue until resume().  The wait
        # below is bounded by idle_wait_s, so expiry also fires on an
        # otherwise idle gateway instead of blocking until the next
        # submit().
        while not self._stop.is_set():
            if self._paused.is_set():
                self._shed_expired()
                self._work.wait(timeout=self.config.idle_wait_s)
                self._work.clear()
                continue
            served = self._dispatch_once()
            if not served:
                # Nothing waiting: sleep until a submit() or stop().
                self._work.wait(timeout=self.config.idle_wait_s)
                self._work.clear()

    def _shed_expired(self) -> None:
        """Shed every queued entry whose deadline has passed."""
        with self._lock:
            expired = self.queue.pop_expired()
        for entry in expired:
            self.tenants.record_shed(entry.request.tenant)
            self._resolve_shed(
                entry, "deadline", "expired while queued"
            )

    def _dispatch_once(self) -> bool:
        """Serve one coalesced group; returns False when queue is idle."""
        self._shed_expired()
        with self._lock:
            group = self.queue.pop_group(self.config.max_batch)
        if not group:
            return False
        self._serve(group)
        return True

    def _serve(self, group: list[QueueEntry]) -> None:
        head = group[0].request
        try:
            context = self._context_for(head)
            examples, slices = self._gather_examples(context, group)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            for entry in group:
                self._resolve_error(entry, exc)
            return
        items = serve_group(
            context, examples,
            workers=self.config.workers,
            executor=self.config.executor,
            tracker=self.usage,
            admission=self.admission,
            priority=head.priority,
        )
        with self._lock:
            self._n_batches += 1
            self._n_coalesced += len(group) - 1
        now = self.clock()
        for entry, (start, stop) in zip(group, slices):
            share = items[start:stop]
            results = []
            for item in share:
                if item.ok:
                    results.append({
                        "ok": True,
                        "prediction": encode_prediction(item.prediction),
                    })
                else:
                    results.append({
                        "ok": False,
                        "error_type": item.error_type,
                        "error": item.error,
                    })
            n_failed = sum(1 for item in share if not item.ok)
            all_shed = share and all(
                item.error_type == "Shed" for item in share
            )
            latency = now - entry.enqueued_at
            with self._lock:
                self._served_by_priority[entry.request.priority] += 1
                self._n_completed += 1
                self._n_failed_examples += n_failed
                window = self._latencies_by_priority[entry.request.priority]
                window.append(latency)
                if len(window) > self.config.latency_window:
                    del window[: len(window) - self.config.latency_window]
            self.tenants.record_completed(entry.request.tenant)
            if all_shed:
                self._count_shed("admission")
            # Terminal record lands before the future resolves: a crash
            # after the client saw its answer can never replay it.
            self._journal_terminal(entry.request_id, "served")
            entry.future.set_result(WrangleResponse(
                request_id=entry.request_id,
                tenant=entry.request.tenant,
                ok=n_failed == 0,
                results=results,
                latency_s=latency,
                n_examples=len(share),
            ))

    def _context_for(self, request: WrangleRequest):
        key = request.group_key
        with self._lock:
            context = self._contexts.get(key)
        if context is None:
            context = resolve_serving_context(
                request.task, request.model, request.dataset,
                k=request.k, selection=request.selection, seed=request.seed,
            )
            with self._lock:
                self._contexts.setdefault(key, context)
                context = self._contexts[key]
        return context

    def _gather_examples(self, context, group: list[QueueEntry]):
        """Concatenate each request's examples; remember its slice."""
        examples: list = []
        slices: list[tuple[int, int]] = []
        for entry in group:
            request = entry.request
            start = len(examples)
            if request.indices is not None:
                pool = context.spec.examples_of(
                    context.dataset, request.split
                )
                for index in request.indices:
                    if not 0 <= index < len(pool):
                        raise ValueError(
                            f"index {index} out of range for "
                            f"{request.dataset}/{request.split} "
                            f"({len(pool)} examples)"
                        )
                    examples.append(pool[index])
            else:
                examples.extend(decode_rows(request.task, request.rows))
            slices.append((start, len(examples)))
        return examples, slices

    def _resolve_shed(self, entry: QueueEntry, reason: str,
                      detail: str) -> None:
        self._count_shed(reason)
        self._journal_terminal(entry.request_id, "shed", reason=reason,
                               detail=detail)
        entry.future.set_result(ShedResponse(
            entry.request_id, entry.request.tenant, reason, detail
        ))

    def _resolve_error(self, entry: QueueEntry, exc: Exception) -> None:
        self.tenants.record_completed(entry.request.tenant)
        self._journal_terminal(entry.request_id, "failed",
                               detail=f"{type(exc).__name__}: {exc}")
        entry.future.set_result(WrangleResponse(
            request_id=entry.request_id,
            tenant=entry.request.tenant,
            ok=False,
            results=[{
                "ok": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
            }],
            n_examples=0,
        ))

    def _journal_terminal(self, request_id: int, outcome: str,
                          reason: str = "", detail: str = "") -> None:
        if self.journal is not None:
            self.journal.record_terminal(
                request_id, outcome, reason=reason, detail=detail
            )

    def _count_shed(self, reason: str) -> None:
        with self._lock:
            self._shed_by_reason[reason] = (
                self._shed_by_reason.get(reason, 0) + 1
            )

    # -- observability ------------------------------------------------

    def healthz(self) -> dict:
        running = self._thread is not None and self._thread.is_alive()
        return {
            "status": "ok" if running else "stopped",
            "uptime_s": (
                0.0 if self._started_at is None
                else self.clock() - self._started_at
            ),
            "queue_depth": len(self.queue),
        }

    def stats(self) -> dict:
        """The ``/stats`` block (schemas/gateway_stats.schema.json)."""
        with self._lock:
            depths = self.queue.depths()
            shed = dict(self._shed_by_reason)
            served = dict(self._served_by_priority)
            n_batches = self._n_batches
            n_coalesced = self._n_coalesced
            n_completed = self._n_completed
            n_failed = self._n_failed_examples
            latency_blocks = {
                priority: _percentiles(window)
                for priority, window in self._latencies_by_priority.items()
            }
        requests = self.usage.latency_summary()
        return {
            "schema_version": 1,
            "uptime_s": (
                0.0 if self._started_at is None
                else self.clock() - self._started_at
            ),
            "queue": {"depth": sum(depths.values()), "by_priority": depths},
            "completed": n_completed,
            "failed_examples": n_failed,
            "shed": {"total": sum(shed.values()), "by_reason": shed},
            "served_by_priority": served,
            "batches": {
                "n_batches": n_batches,
                "n_coalesced_requests": n_coalesced,
                "mean_requests_per_batch": (
                    (n_completed / n_batches) if n_batches else 0.0
                ),
            },
            "latency": latency_blocks,
            "backend_requests": requests,
            "journal": (
                None if self.journal is None else {
                    "path": self.journal.path,
                    "replayed": self._n_replayed,
                    "pending": len(self.journal.pending_requests()),
                }
            ),
            "tenants": self.tenants.stats(),
        }


def _percentiles(window: list[float]) -> dict:
    if not window:
        return {"n": 0, "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
    ordered = sorted(window)

    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "n": len(ordered),
        "p50_s": pick(0.50),
        "p99_s": pick(0.99),
        "max_s": ordered[-1],
    }


class GatewayClient:
    """In-process client: submit and block for the typed response."""

    def __init__(self, gateway: Gateway):
        self.gateway = gateway

    def request(self, request: WrangleRequest, timeout: float = 60.0):
        return self.gateway.submit(request).result(timeout=timeout)

    def wrangle(self, timeout: float = 60.0, **kwargs):
        return self.request(WrangleRequest(**kwargs), timeout=timeout)
