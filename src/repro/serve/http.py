"""Stdlib HTTP front end for the gateway.

Three endpoints, no dependencies:

* ``POST /v1/wrangle`` — body is a JSON :class:`WrangleRequest`
  (``tenant``, ``task``, ``dataset``, ``indices`` *or* ``rows``,
  optional ``split``/``priority``/``deadline_s``/``model``/``k``/
  ``selection``/``seed``).  200 with a response body on success, 429
  with a typed shed body when refused, 400 on malformed input.
* ``GET /healthz`` — liveness + queue depth.
* ``GET /stats`` — the gateway stats block
  (validated against ``schemas/gateway_stats.schema.json`` in CI).

``ThreadingHTTPServer`` gives one thread per connection; every handler
funnels into :meth:`Gateway.submit`, whose tenant gates and single
dispatcher serialize all the interesting decisions, so concurrent HTTP
clients inherit the gateway's determinism and fairness unchanged.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.codec import decode_rows
from repro.serve.gateway import Gateway
from repro.serve.request import ShedResponse, WrangleRequest

__all__ = ["GatewayHTTPServer", "serve_http"]

_REQUEST_FIELDS = {
    "tenant", "task", "dataset", "indices", "rows", "split", "priority",
    "deadline_s", "model", "k", "selection", "seed",
}


def _make_handler(gateway: Gateway, timeout_s: float):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # keep CI logs quiet; stats carry the telemetry

        def _send_json(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - stdlib casing
            if self.path == "/healthz":
                self._send_json(200, gateway.healthz())
            elif self.path == "/stats":
                self._send_json(200, gateway.stats())
            else:
                self._send_json(404, {"error": f"no route {self.path}"})

        def do_POST(self):  # noqa: N802 - stdlib casing
            if self.path != "/v1/wrangle":
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
                unknown = set(payload) - _REQUEST_FIELDS
                if unknown:
                    raise ValueError(
                        f"unknown fields: {sorted(unknown)}"
                    )
                request = WrangleRequest(**payload)
                if request.rows is not None:
                    # Validate inline rows *before* admission: a
                    # malformed payload is the client's 400, not a
                    # serve-time 500 after it consumed a queue slot.
                    decode_rows(request.task, request.rows)
            except (ValueError, TypeError, json.JSONDecodeError) as exc:
                self._send_json(400, {"error": str(exc)})
                return
            future = gateway.submit(request)
            try:
                response = future.result(timeout=timeout_s)
            except FutureTimeoutError:
                # Don't abandon the future: cancel the queued request
                # (typed "client_timeout" shed) so it stops holding a
                # queue slot nobody will read.  If it already
                # dispatched, the work completes but the result is
                # discarded — never re-served, never double-counted.
                gateway.cancel(
                    getattr(future, "request_id", -1),
                    reason="client_timeout",
                    detail=f"client gave up after {timeout_s}s",
                )
                self._send_json(504, {
                    "ok": False,
                    "shed": True,
                    "reason": "client_timeout",
                    "error": (
                        f"request did not complete within {timeout_s}s"
                    ),
                })
                return
            except Exception as exc:  # noqa: BLE001 - surfaced as 500
                self._send_json(500, {"error": str(exc)})
                return
            if isinstance(response, ShedResponse):
                self._send_json(429, response.to_dict())
            else:
                self._send_json(200, response.to_dict())

    return Handler


class GatewayHTTPServer:
    """A gateway plus its HTTP server, started/stopped together."""

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 8765, timeout_s: float = 120.0):
        self.gateway = gateway
        self.httpd = ThreadingHTTPServer(
            (host, port), _make_handler(gateway, timeout_s)
        )
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.gateway.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-gateway-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.gateway.stop()

    def __enter__(self) -> GatewayHTTPServer:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_http(gateway: Gateway, host: str = "127.0.0.1", port: int = 8765,
               timeout_s: float = 120.0) -> GatewayHTTPServer:
    """Construct, start, and return the HTTP server (caller stops it)."""
    server = GatewayHTTPServer(gateway, host, port, timeout_s=timeout_s)
    server.start()
    return server
