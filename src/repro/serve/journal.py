"""Durable gateway intake journal: accepted requests survive a crash.

The gateway's admission decision is a promise — once ``submit`` parks a
request in the queue, the tenant has been charged a rate-bucket slot
and told "accepted".  A gateway crash used to break that promise
silently: queued-but-unserved requests simply vanished.  The
:class:`IntakeJournal` makes acceptance durable with the same
append-only JSONL discipline as :mod:`repro.core.checkpoint` (per-line
CRC-32, flush + fsync on every append, torn-tail tolerance,
skip-corrupt-mid-file):

* ``{"type": "header", "version": 1, "meta": {...}}`` — written once
  when the journal file is created.
* ``{"type": "accepted", "request_id": ..., "request": {...}}`` — one
  per request that cleared the tenant gates and entered the queue.
  ``request`` is the full :class:`~repro.serve.request.WrangleRequest`
  payload, sufficient to reconstruct and re-enqueue it.
* ``{"type": "terminal", "request_id": ..., "outcome": ...}`` — one per
  accepted request that reached a final state: ``"served"`` (response
  delivered), ``"failed"`` (answered with a typed error), or ``"shed"``
  (typed refusal; ``reason`` carries the shed vocabulary).

On reopen, ``pending_requests()`` returns every accepted request with
no terminal record — exactly the work a crash orphaned.  The gateway
re-enqueues those under their *original* request ids on ``--resume``,
and allocates new ids strictly above ``max_request_id``, so a replayed
request is served exactly once and never collides with fresh traffic.

Records are tolerated out of order (a terminal may land before its
accepted line under concurrent appends); replay set-subtracts terminal
ids from accepted ids, so ordering races cannot double-serve.
"""

from __future__ import annotations

import json
import os
import threading
import warnings

# Deliberately the same CRC the run checkpoints stamp — one journal
# discipline across the repo, not two near-copies.
from repro.core.checkpoint import CheckpointCorruptionWarning, _record_crc

__all__ = ["INTAKE_JOURNAL_VERSION", "IntakeJournal", "TERMINAL_OUTCOMES"]

INTAKE_JOURNAL_VERSION = 1

#: Final states an accepted request can reach.
TERMINAL_OUTCOMES = ("served", "failed", "shed")


class IntakeJournal:
    """One append-only JSONL intake journal for one gateway.

    Opening an existing file replays it: ``pending`` maps request_id ->
    journaled request payload for every accepted-but-unterminal
    request, and ``max_request_id`` is the highest id ever journaled
    (fresh ids must start above it).  Appends are lock-protected and
    fsync'd line-by-line — the whole point is surviving SIGKILL.
    """

    def __init__(self, path, meta: dict | None = None):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._accepted: dict[int, dict] = {}
        self._terminal: set[int] = set()
        self.max_request_id = 0
        self.n_replayed = 0
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existed:
            self._load()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if not existed:
            self._append(
                {
                    "type": "header",
                    "version": INTAKE_JOURNAL_VERSION,
                    "meta": meta or {},
                }
            )

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        # Trailing partial line == killed mid-append; drop it.  The
        # request it described is either unjournaled (client saw no
        # acceptance) or re-reaches terminal on replay — both safe.
        if lines and lines[-1]:
            try:
                json.loads(lines[-1])
            except json.JSONDecodeError:
                lines = lines[:-1]
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"intake journal {self.path} line {lineno}: unparseable "
                    f"record skipped",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                warnings.warn(
                    f"intake journal {self.path} line {lineno}: non-object "
                    f"record skipped",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            if "crc" in record and record["crc"] != _record_crc(record):
                warnings.warn(
                    f"intake journal {self.path} line {lineno}: CRC "
                    f"mismatch — record skipped",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            kind = record.get("type")
            if kind == "accepted":
                request_id = int(record["request_id"])
                self._accepted[request_id] = record.get("request", {})
                self.max_request_id = max(self.max_request_id, request_id)
            elif kind == "terminal":
                request_id = int(record["request_id"])
                self._terminal.add(request_id)
                self.max_request_id = max(self.max_request_id, request_id)
            # header / unknown types: skipped (forward-compatible).

    # -- appending ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        stamped = dict(record)
        stamped["crc"] = _record_crc(record)
        line = json.dumps(stamped, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_accepted(self, request_id: int, request: dict) -> None:
        """Journal one admitted request *before* its future can resolve."""
        self._append(
            {"type": "accepted", "request_id": request_id, "request": request}
        )
        with self._lock:
            self._accepted[request_id] = request
            self.max_request_id = max(self.max_request_id, request_id)

    def record_terminal(
        self, request_id: int, outcome: str, reason: str = "",
        detail: str = "",
    ) -> None:
        """Journal one accepted request reaching a final state."""
        if outcome not in TERMINAL_OUTCOMES:
            raise ValueError(
                f"outcome must be one of {TERMINAL_OUTCOMES}, got {outcome!r}"
            )
        record = {"type": "terminal", "request_id": request_id,
                  "outcome": outcome}
        if reason:
            record["reason"] = reason
        if detail:
            record["detail"] = detail
        self._append(record)
        with self._lock:
            self._terminal.add(request_id)

    # -- replay ------------------------------------------------------------

    def pending_requests(self) -> list[tuple[int, dict]]:
        """Accepted-but-unterminal requests, oldest id first."""
        with self._lock:
            pending = [
                (request_id, dict(payload))
                for request_id, payload in self._accepted.items()
                if request_id not in self._terminal
            ]
        return sorted(pending, key=lambda item: item[0])

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> IntakeJournal:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
