"""Request/response model and the bounded priority queue.

The gateway's unit of work is one :class:`WrangleRequest` — a tenant
asking for predictions on a handful of examples of one task.  Requests
carrying the same :attr:`~WrangleRequest.group_key` build prompts from
the same demonstration prefix, so the scheduler may coalesce them into
one micro-batch without changing any prediction (temperature-0 purity:
the completion is a function of the prompt alone).

The queue is bounded and priority-ordered with deterministic overflow:
when full, the newest strictly-lower-priority waiter is evicted (typed
:class:`ShedResponse`, never a silent drop) in favor of the arrival;
an arrival that outranks nothing is shed itself.  Dispatch order —
strict priority, FIFO within a class — is decided by one dispatcher
thread, so shed sets and serve order do not depend on how many
executor workers drain the batches.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.api.resilience import PRIORITIES
from repro.core.tasks.spec import available_tasks

__all__ = [
    "QueueFull",
    "RequestQueue",
    "ShedResponse",
    "WrangleRequest",
    "WrangleResponse",
]


class QueueFull(Exception):
    """The queue is at capacity and the arrival outranks no waiter."""


@dataclass
class WrangleRequest:
    """One tenant's ask: predictions for a few examples of one task.

    Examples come in one of two forms:

    * ``indices`` — positions into ``dataset``'s ``split`` (the
      benchmark / replay shape; trivially comparable to the offline
      path), or
    * ``rows`` — inline example payloads decoded per task (see
      :mod:`repro.serve.codec`).

    ``deadline_s`` is a *queueing* deadline: a request still waiting
    when it expires is shed with reason ``"deadline"`` instead of
    serving a stale answer.
    """

    tenant: str
    task: str
    dataset: str
    indices: list[int] | None = None
    rows: list[dict] | None = None
    split: str = "test"
    priority: str = "interactive"
    deadline_s: float | None = None
    model: str = "gpt3-175b"
    k: int | None = None
    selection: str = "random"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )
        if self.task not in available_tasks():
            raise ValueError(f"unknown task {self.task!r}")
        if (self.indices is None) == (self.rows is None):
            raise ValueError(
                "exactly one of indices/rows must be provided"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")

    @property
    def n_examples(self) -> int:
        return len(self.indices if self.indices is not None else self.rows)

    @property
    def group_key(self) -> tuple:
        """Coalescing key: requests sharing it share prompt prefix and
        model, so their examples may ride one micro-batch."""
        return (
            self.task, self.dataset, self.split, self.model,
            self.k, self.selection, self.seed,
        )


@dataclass
class WrangleResponse:
    """Per-request outcome: one result slot per submitted example."""

    request_id: int
    tenant: str
    ok: bool
    results: list[dict]
    latency_s: float = 0.0
    n_examples: int = 0
    shed: bool = False

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "ok": self.ok,
            "shed": False,
            "n_examples": self.n_examples,
            "latency_s": self.latency_s,
            "results": self.results,
        }


@dataclass
class ShedResponse:
    """Typed refusal — the request was not (fully) attempted.

    ``reason`` is one of the pinned vocabulary the stats block counts:
    ``tenant_rate``, ``tenant_budget``, ``queue_full``,
    ``queue_evicted``, ``deadline``, ``admission``, ``shutdown``.
    """

    request_id: int
    tenant: str
    reason: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "ok": False,
            "shed": True,
            "reason": self.reason,
            "detail": self.detail,
        }


@dataclass
class QueueEntry:
    """A request waiting in the queue, with its submission metadata."""

    request_id: int
    request: WrangleRequest
    future: object
    enqueued_at: float
    expires_at: float | None = field(default=None)

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class RequestQueue:
    """Bounded, priority-ordered queue with deterministic overflow.

    Not thread-safe by itself — the gateway serializes access under its
    own lock.  ``clock`` is injectable so deadline expiry is testable
    without sleeping.
    """

    def __init__(self, capacity: int = 64, clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        # request_id -> entry, insertion-ordered, one map per priority
        # class: OrderedDict gives FIFO pops *and* O(1) removal of a
        # coalesced or evicted entry by id.
        self._waiting: dict[str, OrderedDict[int, QueueEntry]] = {
            priority: OrderedDict() for priority in PRIORITIES
        }

    def __len__(self) -> int:
        return sum(len(waiting) for waiting in self._waiting.values())

    def depths(self) -> dict[str, int]:
        return {
            priority: len(waiting)
            for priority, waiting in self._waiting.items()
        }

    def push(self, entry: QueueEntry) -> QueueEntry | None:
        """Enqueue ``entry``; returns the entry evicted to make room.

        At capacity, the newest waiter of the *lowest* priority class
        strictly below the arrival's is evicted (the work least likely
        to meet its deadline anyway).  If no waiter ranks below the
        arrival, :class:`QueueFull` is raised and the arrival is shed.
        """
        if len(self) < self.capacity:
            self._waiting[entry.request.priority][entry.request_id] = entry
            return None
        arrival_rank = PRIORITIES.index(entry.request.priority)
        for priority in reversed(PRIORITIES):
            if PRIORITIES.index(priority) <= arrival_rank:
                break
            waiting = self._waiting[priority]
            if waiting:
                _, evicted = waiting.popitem(last=True)
                self._waiting[entry.request.priority][entry.request_id] = entry
                return evicted
        raise QueueFull(
            f"queue at capacity ({self.capacity}) with no lower-priority "
            f"waiter to evict for a {entry.request.priority!r} arrival"
        )

    def remove(self, request_id: int) -> QueueEntry | None:
        """O(1) removal of one waiter by id (abandoned requests).

        Returns the removed entry, or ``None`` when ``request_id`` is
        not waiting (already dispatched, resolved, or never queued).
        """
        for waiting in self._waiting.values():
            entry = waiting.pop(request_id, None)
            if entry is not None:
                return entry
        return None

    def pop_expired(self) -> list[QueueEntry]:
        """Remove and return every waiter whose deadline has passed."""
        now = self.clock()
        expired: list[QueueEntry] = []
        for waiting in self._waiting.values():
            stale = [
                request_id for request_id, entry in waiting.items()
                if entry.expired(now)
            ]
            for request_id in stale:
                expired.append(waiting.pop(request_id))
        return expired

    def pop_group(self, max_examples: int | None = None) -> list[QueueEntry]:
        """Dequeue the head request plus every coalescible follower.

        The head is the oldest waiter of the highest non-empty priority
        class.  Followers share the head's :attr:`group_key` — from
        *any* priority class, order preserved within each class,
        scanned highest class first — until ``max_examples`` examples
        are gathered.  Coalescing across classes is safe because the
        batch serves at the head's priority: backfill piggybacking on
        an interactive batch only ever gets *earlier* service.
        """
        head: QueueEntry | None = None
        for priority in PRIORITIES:
            waiting = self._waiting[priority]
            if waiting:
                _, head = waiting.popitem(last=False)
                break
        if head is None:
            return []
        group = [head]
        total = head.request.n_examples
        key = head.request.group_key
        for priority in PRIORITIES:
            waiting = self._waiting[priority]
            matched = []
            for request_id, entry in waiting.items():
                if max_examples is not None and total >= max_examples:
                    break
                if entry.request.group_key == key:
                    matched.append(request_id)
                    total += entry.request.n_examples
            for request_id in matched:
                group.append(waiting.pop(request_id))
        return group

    def drain(self) -> list[QueueEntry]:
        """Remove and return everything (shutdown path)."""
        drained: list[QueueEntry] = []
        for waiting in self._waiting.values():
            drained.extend(waiting.values())
            waiting.clear()
        return drained
