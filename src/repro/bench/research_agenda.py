"""Section 5 research-agenda studies, implemented and measured.

Three experiments operationalizing the paper's forward-looking proposals:

* **Prototyping** (§5.1) — the prompted 175B labels an unlabeled pair
  pool; a supervised Ditto student trains on the machine labels and is
  compared against the teacher and a gold-trained Ditto.
* **Selective prediction** (§5.2) — the model's confidence scores gate
  which verdicts are trusted; accuracy at 50% coverage should beat full
  coverage.
* **Prompt ensembling** (§5.3) — majority voting over question rewordings
  lifts the 6.7B model toward (not necessarily onto) the 175B single-
  prompt score.
"""

from __future__ import annotations

from repro.baselines import DittoMatcher
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.core.ensemble import PromptEnsemble
from repro.core.metrics import binary_metrics
from repro.core.prompts import build_entity_matching_prompt
from repro.core.prototype import ModelPrototyper
from repro.core.tasks.common import parse_yes_no
from repro.core.tasks.entity_matching import (
    default_prompt_config,
    select_demonstrations,
)
from repro.datasets import load_dataset
from repro.datasets.base import MatchingPair
from repro.api.backends import get_backend

DATASET = "walmart_amazon"


def run_prototyping() -> ExperimentResult:
    """§5.1: FM-labeled training vs gold training vs the FM itself."""
    dataset = load_dataset(DATASET)
    fm = get_backend("gpt3-175b")
    config = default_prompt_config(dataset)
    demos = select_demonstrations(fm, dataset, 10, config, "manual")

    # Unlabeled pool = the train split with labels hidden from the teacher.
    pool = [MatchingPair(p.left, p.right, p.label) for p in dataset.train]
    prototyper = ModelPrototyper(fm, demonstrations=demos, config=config)
    student = prototyper.distill(
        pool, student_factory=lambda: DittoMatcher.for_dataset(dataset)
    )
    labels = [pair.label for pair in dataset.test]
    student_f1 = binary_metrics(student.predict_many(dataset.test), labels).f1

    gold = DittoMatcher.for_dataset(dataset).fit(dataset.train)
    gold_f1 = binary_metrics(gold.predict_many(dataset.test), labels).f1

    teacher_f1 = evaluate_fm("entity_matching", dataset, k=10, model=fm).metric

    result = ExperimentResult(
        experiment="agenda_prototyping",
        title=f"§5.1 prototyping on {DATASET}: distill the prompted FM into Ditto",
        headers=["system", "labels used", "f1"],
        notes=(
            f"teacher labeled {prototyper.report.n_labeled} pairs, "
            f"agreement with gold {100 * prototyper.report.agreement_with_gold:.1f}%"
        ),
    )
    result.add_row("GPT3-175B teacher (k=10)", "10 demonstrations", round(100 * teacher_f1, 1))
    result.add_row("Ditto on FM labels", "0 gold labels", round(100 * student_f1, 1))
    result.add_row("Ditto on gold labels", f"{len(dataset.train)} gold", round(100 * gold_f1, 1))
    return result


def run_selective_prediction() -> ExperimentResult:
    """§5.2: confidence-gated verdicts (coverage vs accuracy)."""
    dataset = load_dataset(DATASET)
    fm = get_backend("gpt3-175b")
    config = default_prompt_config(dataset)
    demos = select_demonstrations(fm, dataset, 10, config, "manual")

    scored: list[tuple[float, bool, bool]] = []  # (confidence, prediction, label)
    for pair in dataset.test:
        prompt = build_entity_matching_prompt(pair, demos, config)
        completion = fm.complete_verbose(prompt)
        scored.append((completion.confidence, parse_yes_no(completion.text), pair.label))
    scored.sort(key=lambda item: item[0], reverse=True)

    result = ExperimentResult(
        experiment="agenda_selective",
        title=f"§5.2 selective prediction on {DATASET} (confidence-ranked)",
        headers=["coverage", "n", "accuracy"],
        notes="verdicts ranked by the model's self-reported confidence",
    )
    for coverage in (0.25, 0.5, 0.75, 1.0):
        kept = scored[: max(1, int(len(scored) * coverage))]
        accuracy = sum(pred == label for _c, pred, label in kept) / len(kept)
        result.add_row(f"{int(100 * coverage)}%", len(kept), round(100 * accuracy, 1))
    return result


def run_ensembling() -> ExperimentResult:
    """§5.3: prompt ensembling for the small open model."""
    dataset = load_dataset(DATASET)
    result = ExperimentResult(
        experiment="agenda_ensemble",
        title=f"§5.3 prompt ensembling on {DATASET} (k=10)",
        headers=["model", "f1"],
        notes="ensemble = majority vote over 5 question rewordings",
    )
    for name in ("gpt3-6.7b", "gpt3-175b"):
        fm = get_backend(name)
        single = evaluate_fm("entity_matching", dataset, k=10, model=fm)
        ensemble = PromptEnsemble(fm)
        ensembled = evaluate_fm("entity_matching", dataset, k=10, model=ensemble)
        result.add_row(f"{name} single prompt", round(100 * single.metric, 1))
        result.add_row(f"{name} ensemble", round(100 * ensembled.metric, 1))
    return result


def run() -> list[ExperimentResult]:
    return [run_prototyping(), run_selective_prediction(), run_ensembling()]


if __name__ == "__main__":
    for result in run():
        print(result.render())
        print()
