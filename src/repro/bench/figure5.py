"""Figure 5 — finetuning curves: metric vs. training-set fraction.

For Walmart-Amazon (EM, F1), Hospital (ED, F1) and Restaurant (DI,
accuracy): full-finetuned and adapter-finetuned GPT3-1.3B and GPT3-6.7B at
5/10/25/50/100% of the training split, against the GPT3-175B few-shot
reference line.  The paper's claims:

* full finetuning of 6.7B approaches the 175B few-shot score with a small
  fraction of the data (~10% on Walmart-Amazon),
* adapters close the gap on Walmart-Amazon and Restaurant but **not** on
  Hospital (the frozen base cannot produce character-level features),
* 1.3B is less sample-efficient than 6.7B.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.core.metrics import accuracy, binary_metrics
from repro.datasets import load_dataset
from repro.fm import AdapterModel, FinetunedModel

FRACTIONS = (0.05, 0.10, 0.25, 0.50, 1.00)
SMALL_MODELS = ("gpt3-1.3b", "gpt3-6.7b")
MODES = {"full": FinetunedModel, "adapter": AdapterModel}

#: Cap on evaluated test examples per point (Hospital has ~1.9K cells).
MAX_TEST = 600


def _stratified_prefix(train, fraction: float, label_of) -> list:
    """First ceil(fraction·n) examples, preserving the class ratio.

    Finetuning runs sample their training subsets; preserving the (already
    skewed) label ratio keeps tiny subsets from being all-negative by
    chance, which would make the low-data end of the curves pure noise.
    """
    n = max(4, int(len(train) * fraction))
    positives = [item for item in train if label_of(item)]
    negatives = [item for item in train if not label_of(item)]
    if not positives or not negatives:
        return list(train[:n])
    n_pos = max(1, round(n * len(positives) / len(train)))
    return positives[:n_pos] + negatives[: n - n_pos]


def _fit_and_score(model, task: str, dataset, fraction: float) -> float:
    train = dataset.train
    if task in ("entity_matching", "error_detection"):
        subset = _stratified_prefix(train, fraction, lambda item: item.label)
    else:
        n = max(4, int(len(train) * fraction))
        subset = train[:n]
    test = dataset.test[:MAX_TEST]
    if task == "entity_matching":
        if not any(pair.label for pair in subset) or all(pair.label for pair in subset):
            return 0.0
        model.fit_matching(subset)
        predictions = [model.predict_matching(pair) for pair in test]
        return binary_metrics(predictions, [pair.label for pair in test]).f1
    if task == "error_detection":
        if not any(example.label for example in subset):
            return 0.0
        model.fit_error_detection(subset)
        predictions = [model.predict_error(example) for example in test]
        return binary_metrics(predictions, [example.label for example in test]).f1
    if task == "imputation":
        model.fit_imputation(subset)
        predictions = [model.predict_imputation(example) for example in test]
        return accuracy(predictions, [example.answer for example in test])
    raise ValueError(f"unknown task {task!r}")


def _few_shot_reference(task: str, dataset) -> float:
    return evaluate_fm(
        task, dataset, k=10, model="gpt3-175b", max_examples=MAX_TEST
    ).metric


EXPERIMENTS = (
    ("walmart_amazon", "entity_matching", "f1"),
    ("hospital", "error_detection", "f1"),
    ("restaurant", "imputation", "accuracy"),
)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="figure5",
        title="Finetuning curves (metric vs train fraction)",
        headers=["dataset", "series"] + [f"{int(100 * f)}%" for f in FRACTIONS],
        notes=(
            "reference row is GPT3-175B few-shot (constant); "
            "paper: Narayan et al. VLDB 2022, Figure 5"
        ),
    )
    for dataset_name, task, _metric in EXPERIMENTS:
        dataset = load_dataset(dataset_name)
        reference = 100 * _few_shot_reference(task, dataset)
        result.add_row(dataset_name, "175b few-shot", *([round(reference, 1)] * len(FRACTIONS)))
        for model_name in SMALL_MODELS:
            for mode, cls in MODES.items():
                scores = []
                for fraction in FRACTIONS:
                    model = cls(model_name)
                    scores.append(
                        round(100 * _fit_and_score(model, task, dataset, fraction), 1)
                    )
                result.add_row(dataset_name, f"{model_name} {mode}", *scores)
    return result


if __name__ == "__main__":
    print(run().render())
