"""Table 4 — entity-matching prompt ablations (k=10, ≤200 eval samples).

Five configurations on Beer, iTunes-Amazon and Walmart-Amazon:

* Prompt 1, attribute selection, manual example selection (the default),
* Prompt 1 without example selection (random demos, 3 seeds, mean ± std),
* Prompt 1 without attribute selection (serialize every attribute),
* Prompt 1 with attribute selection but no attribute *names*,
* Prompt 2 ("equivalent?" instead of "the same?").
"""

from __future__ import annotations

import statistics

from repro.bench.paper_numbers import TABLE4
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.core.tasks.entity_matching import default_prompt_config
from repro.datasets import load_dataset
from repro.api.backends import get_backend

DATASETS = ("beer", "itunes_amazon", "walmart_amazon")
MAX_EXAMPLES = 200
PROMPT_2 = "Are {noun} A and {noun} B equivalent?"

ROWS = (
    ("prompt1_attr_example", "P1 + attr + manual"),
    ("prompt1_no_example_select", "P1 + attr, random demos"),
    ("prompt1_no_attr_select", "P1, all attributes"),
    ("prompt1_no_attr_names", "P1 + attr, no attr names"),
    ("prompt2_attr_example", "P2 + attr + manual"),
)


def _f1(model, dataset, config, selection="manual", seed: int = 0) -> float:
    run = evaluate_fm(
        "entity_matching", dataset, k=10, model=model, selection=selection,
        config=config, max_examples=MAX_EXAMPLES, seed=seed,
    )
    return 100 * run.metric


def run(model: str = "gpt3-175b") -> ExperimentResult:
    fm = get_backend(model)
    result = ExperimentResult(
        experiment="table4",
        title="EM prompt ablations (F1, k=10)",
        headers=["configuration"] + [
            column for name in DATASETS for column in (name, "paper")
        ],
        notes=(
            "random-demo rows report mean±std over 3 seeds; "
            "paper columns: Narayan et al. VLDB 2022, Table 4"
        ),
    )
    measured: dict[str, dict[str, object]] = {key: {} for key, _label in ROWS}
    for name in DATASETS:
        dataset = load_dataset(name)
        default_config = default_prompt_config(dataset)
        measured["prompt1_attr_example"][name] = _f1(fm, dataset, default_config)

        random_scores = [
            _f1(fm, dataset, default_config, selection="random", seed=seed)
            for seed in (0, 1, 2)
        ]
        measured["prompt1_no_example_select"][name] = (
            f"{statistics.mean(random_scores):.1f}"
            f"±{statistics.pstdev(random_scores):.1f}"
        )

        all_attrs_config = default_prompt_config(dataset, select_attributes=False)
        measured["prompt1_no_attr_select"][name] = _f1(fm, dataset, all_attrs_config)

        no_names_config = default_prompt_config(
            dataset, include_attribute_names=False
        )
        measured["prompt1_no_attr_names"][name] = _f1(fm, dataset, no_names_config)

        prompt2_config = default_prompt_config(dataset, question=PROMPT_2)
        measured["prompt2_attr_example"][name] = _f1(fm, dataset, prompt2_config)

    for key, label in ROWS:
        row: list = [label]
        for name in DATASETS:
            row.append(measured[key][name])
            row.append(TABLE4[key][name])
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().render())
