"""Extension study — blocking effectiveness ahead of prompted matching.

Section 2.1 notes that "real-world EM systems are often preceded by
blocking heuristics which are used to remove obvious non-matches."  For a
prompted FM the candidate count is the *bill*: every surviving pair is an
API call.  This study reconstructs the two source tables of each EM
benchmark, runs the token blocker, and reports pair completeness (recall
of true matches), the reduction ratio over the cross product, and the
simulated dollar cost of matching the surviving candidates with k=10
prompts at published davinci pricing.
"""

from __future__ import annotations

from repro.api.usage import PRICE_PER_1K_TOKENS, count_tokens
from repro.bench.reporting import ExperimentResult
from repro.core.blocking import TokenBlocker, evaluate_blocking
from repro.core.prompts import build_entity_matching_prompt
from repro.core.tasks.entity_matching import default_prompt_config
from repro.datasets import load_dataset
from repro.datasets.base import MatchingPair
from repro.datasets.em_tables import dataset_tables

DATASETS = ("fodors_zagats", "beer", "walmart_amazon", "amazon_google")


def _cost_per_pair(dataset) -> float:
    """Simulated 175B cost of one k=10 prompt for this dataset."""
    config = default_prompt_config(dataset)
    demos = dataset.train[:10]
    sample = dataset.test[0]
    prompt = build_entity_matching_prompt(sample, demos, config)
    return count_tokens(prompt) * PRICE_PER_1K_TOKENS["gpt3-175b"] / 1000.0


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="blocking_study",
        title="Token blocking ahead of prompted matching",
        headers=[
            "dataset", "left×right", "candidates", "completeness",
            "reduction", "cost_blocked_usd", "cost_crossproduct_usd",
        ],
        notes="completeness = recall of true matches; cost at davinci pricing, k=10 prompts",
    )
    for name in DATASETS:
        dataset = load_dataset(name)
        tables = dataset_tables(dataset)
        blocking_attr = dataset.key_attributes[0]
        blocker = TokenBlocker(blocking_attr)
        candidates = blocker.candidates(tables.left.rows, tables.right.rows)
        report = evaluate_blocking(
            candidates, tables.matches, len(tables.left), len(tables.right)
        )
        per_pair = _cost_per_pair(dataset)
        result.add_row(
            name,
            f"{report.n_left}x{report.n_right}",
            report.n_candidates,
            round(100 * report.pair_completeness, 1),
            round(100 * report.reduction_ratio, 1),
            round(per_pair * report.n_candidates, 2),
            round(per_pair * report.n_left * report.n_right, 2),
        )
    return result


if __name__ == "__main__":
    print(run().render())
