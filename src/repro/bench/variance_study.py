"""Extension study — sampling variance in prompt-based predictions.

Section 4.3 observes "non-trivial variance in prompt-based learning
settings", and Section 5.2 lists non-determinism among the debuggability
challenges.  The simulator models sampling temperature as deterministic
per-(prompt, temperature) jitter on the decision margin, so the study is
reproducible: we re-run entity matching at several temperatures with
perturbed prompts (a leading seed marker, mimicking resampled batches)
and report the F1 spread.
"""

from __future__ import annotations

import statistics

from repro.bench.reporting import ExperimentResult
from repro.core.metrics import binary_metrics
from repro.core.prompts import build_entity_matching_prompt
from repro.core.tasks.common import parse_yes_no
from repro.core.tasks.entity_matching import (
    default_prompt_config,
    select_demonstrations,
)
from repro.datasets import load_dataset
from repro.api.backends import get_backend

DATASET = "walmart_amazon"
TEMPERATURES = (0.0, 0.3, 0.7)
N_RESAMPLES = 3
MAX_EXAMPLES = 150


def _f1_at(fm, dataset, demos, config, temperature: float, resample: int) -> float:
    predictions = []
    pairs = dataset.test[:MAX_EXAMPLES]
    for pair in pairs:
        prompt = build_entity_matching_prompt(pair, demos, config)
        if temperature > 0:
            # A resample marker changes the sampling path without changing
            # the task content, the way a fresh API call would.
            prompt = f"run {resample}\n\n{prompt}"
        answer = fm.complete(prompt, temperature=temperature)
        predictions.append(parse_yes_no(answer))
    return binary_metrics(predictions, [p.label for p in pairs]).f1


def run() -> ExperimentResult:
    fm = get_backend("gpt3-175b")
    dataset = load_dataset(DATASET)
    config = default_prompt_config(dataset)
    demos = select_demonstrations(fm, dataset, 10, config, "manual")

    result = ExperimentResult(
        experiment="variance_study",
        title=f"Sampling-temperature variance on {DATASET} (k=10)",
        headers=["temperature", "mean_f1", "std", "min", "max"],
        notes=f"{N_RESAMPLES} resamples per temperature; temperature 0 is exact",
    )
    for temperature in TEMPERATURES:
        resamples = 1 if temperature == 0 else N_RESAMPLES
        scores = [
            100 * _f1_at(fm, dataset, demos, config, temperature, resample)
            for resample in range(resamples)
        ]
        result.add_row(
            temperature,
            round(statistics.mean(scores), 1),
            round(statistics.pstdev(scores), 2),
            round(min(scores), 1),
            round(max(scores), 1),
        )
    return result


if __name__ == "__main__":
    print(run().render())
