"""Figure 4 — sample/training-efficiency trade-off.

The paper's conceptual figure: larger FMs are usable zero/few-shot (no
parameter updates, almost no labels); smaller FMs need finetuning —
adapters update ~5% of parameters but want more labels, full finetuning
updates everything but reaches quality with fewer labels.

We realize it quantitatively on Walmart-Amazon: for each (model,
adaptation) we report the trainable-parameter count and the smallest
training fraction whose F1 reaches 90% of the 175B few-shot score.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.figure5 import FRACTIONS, _few_shot_reference, _fit_and_score
from repro.datasets import load_dataset
from repro.fm import AdapterModel, FinetunedModel

SERIES = (
    ("gpt3-175b", "few-shot", None),
    ("gpt3-6.7b", "full", FinetunedModel),
    ("gpt3-6.7b", "adapter", AdapterModel),
    ("gpt3-1.3b", "full", FinetunedModel),
    ("gpt3-1.3b", "adapter", AdapterModel),
)


def run(dataset_name: str = "walmart_amazon") -> ExperimentResult:
    dataset = load_dataset(dataset_name)
    reference = _few_shot_reference("entity_matching", dataset)
    target = 0.9 * reference

    result = ExperimentResult(
        experiment="figure4",
        title=f"Sample/training-efficiency trade-off ({dataset_name})",
        headers=[
            "model", "adaptation", "trainable_params",
            "labels_to_90pct_of_175b", "best_f1",
        ],
        notes=(
            f"target = 90% of 175B few-shot F1 ({100 * reference:.1f}); "
            "'-' = target not reached at 100% of the training data"
        ),
    )
    result.add_row("gpt3-175b", "few-shot (k=10)", 0, 10, round(100 * reference, 1))
    for model_name, mode, cls in SERIES[1:]:
        needed: int | str = "-"
        best = 0.0
        for fraction in FRACTIONS:
            model = cls(model_name)
            score = _fit_and_score(model, "entity_matching", dataset, fraction)
            best = max(best, score)
            if score >= target and needed == "-":
                needed = max(4, int(len(dataset.train) * fraction))
        model = cls(model_name)
        params = (
            model.profile.n_parameters if mode == "full"
            else int(model.profile.n_parameters * 0.05)
        )
        result.add_row(model_name, mode, params, needed, round(100 * best, 1))
    return result


if __name__ == "__main__":
    print(run().render())
