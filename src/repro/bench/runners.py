"""Shared evaluation helpers for the bench modules.

``evaluate_fm`` is the one entry point for every foundation-model column
in every table and figure — any registered task, by name, through the
generic engine.  The ``evaluate_<baseline>`` helpers wrap the
task-specific supervised/rule-based systems the paper compares against.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.api.batch import BatchExecutor
from repro.baselines import (
    DittoMatcher,
    HoloClean,
    HoloDetect,
    ImpImputer,
    MagellanMatcher,
    SmatMatcher,
    TdeSynthesizer,
)
from repro.core.metrics import accuracy, binary_metrics
from repro.core.tasks import TaskRun, run_task
from repro.datasets.base import (
    EntityMatchingDataset,
    ErrorDetectionDataset,
    ImputationDataset,
    SchemaMatchingDataset,
    TransformationDataset,
)


# Active manifest sink (see :func:`collect_manifests`).  ``None`` means
# collection is off and evaluate_fm discards nothing — the manifest still
# rides on the returned TaskRun.
_MANIFEST_SINK: list | None = None


@contextmanager
def collect_manifests():
    """Collect the RunManifest of every ``evaluate_fm`` call in scope.

    The CLI's ``bench --manifest DIR`` wraps each experiment in this to
    gather per-evaluation telemetry without the fourteen experiment
    modules knowing manifests exist.  Yields the (mutable) list that
    accumulates :class:`~repro.core.manifest.RunManifest` objects; nests
    safely (the inner scope shadows the outer).
    """
    global _MANIFEST_SINK
    previous = _MANIFEST_SINK
    _MANIFEST_SINK = sink = []
    try:
        yield sink
    finally:
        _MANIFEST_SINK = previous


def evaluate_fm(
    task: str,
    dataset,
    k: int | None = None,
    model="gpt3-175b",
    selection="manual",
    config=None,
    max_examples: int | None = None,
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
    on_error: str | None = None,
    checkpoint=None,
    fault_plan=None,
) -> TaskRun:
    """Foundation-model column for any registered task.

    ``task`` is a registry name ("entity_matching", "em", …); ``dataset``
    and ``model`` may be names or objects.  ``k=None`` uses the task's
    paper default.  Returns the full :class:`TaskRun` — callers take
    ``.metric`` for a table cell or keep predictions/records for slicing.
    The run's manifest is also pushed to any active
    :func:`collect_manifests` scope.  ``on_error`` / ``checkpoint`` /
    ``fault_plan`` pass straight through to
    :func:`~repro.core.tasks.engine.run_task` (``None`` inherits the
    process-wide defaults the CLI's chaos flags install).
    """
    run = run_task(
        task, model, dataset, k=k, selection=selection, config=config,
        max_examples=max_examples, seed=seed, workers=workers, trace=trace,
        on_error=on_error, checkpoint=checkpoint, fault_plan=fault_plan,
    )
    if _MANIFEST_SINK is not None and run.manifest is not None:
        _MANIFEST_SINK.append(run.manifest)
    return run


def evaluate_magellan(dataset: EntityMatchingDataset, max_test: int | None = None) -> float:
    matcher = MagellanMatcher.for_dataset(dataset).fit(dataset.train)
    test = dataset.test[:max_test] if max_test else dataset.test
    predictions = matcher.predict_many(test)
    return binary_metrics(predictions, [pair.label for pair in test]).f1


def evaluate_ditto(dataset: EntityMatchingDataset, max_test: int | None = None) -> float:
    matcher = DittoMatcher.for_dataset(dataset).fit(dataset.train)
    test = dataset.test[:max_test] if max_test else dataset.test
    predictions = matcher.predict_many(test)
    return binary_metrics(predictions, [pair.label for pair in test]).f1


def evaluate_holoclean_detection(dataset: ErrorDetectionDataset,
                                 max_test: int | None = None,
                                 workers: int | None = None) -> float:
    rows = [example.row for example in dataset.train] + dataset.clean_rows[:100]
    engine = HoloClean().fit(rows)
    test = dataset.test[:max_test] if max_test else dataset.test
    predictions = BatchExecutor(workers=workers).map(engine.detect, test)
    return binary_metrics(predictions, [example.label for example in test]).f1


def evaluate_holodetect(dataset: ErrorDetectionDataset,
                        max_test: int | None = None) -> float:
    detector = HoloDetect().fit(dataset)
    test = dataset.test[:max_test] if max_test else dataset.test
    predictions = detector.predict_many(test)
    return binary_metrics(predictions, [example.label for example in test]).f1


def evaluate_holoclean_imputation(dataset: ImputationDataset,
                                  workers: int | None = None) -> float:
    engine = HoloClean().fit(dataset.complete_train_rows)
    predictions = BatchExecutor(workers=workers).map(engine.impute, dataset.test)
    return accuracy(predictions, [example.answer for example in dataset.test])


def evaluate_imp(dataset: ImputationDataset) -> float:
    imputer = ImpImputer.for_dataset(dataset).fit(dataset.train)
    predictions = imputer.predict_many(dataset.test)
    return accuracy(predictions, [example.answer for example in dataset.test])


def evaluate_smat(dataset: SchemaMatchingDataset) -> float:
    matcher = SmatMatcher.for_dataset(dataset)
    predictions = matcher.predict_many(dataset.test)
    return binary_metrics(predictions, [pair.label for pair in dataset.test]).f1


def evaluate_tde(dataset: TransformationDataset) -> float:
    return TdeSynthesizer().evaluate(dataset)
