"""Benchmark harness: regenerate every table and figure in the paper.

One module per experiment.  Each exposes a ``run(...)`` function returning
an :class:`ExperimentResult` (structured rows plus the paper's published
values for side-by-side comparison) and the ``benchmarks/`` directory
wraps them in pytest-benchmark entries.
"""

from repro.bench.reporting import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
