"""Benchmark harness: regenerate every table and figure in the paper.

One module per experiment.  Each exposes a ``run(...)`` function returning
an :class:`ExperimentResult` (structured rows plus the paper's published
values for side-by-side comparison) and the ``benchmarks/`` directory
wraps them in pytest-benchmark entries.

:data:`EXPERIMENTS` is the single source of truth for what exists: the
CLI's ``bench`` command, ``available_experiments()`` and the docs all
derive from it, so adding an experiment module means adding exactly one
entry here.
"""

from __future__ import annotations

import importlib

from repro.bench.reporting import (
    ExperimentResult,
    render_manifest,
    render_table,
    summarize_manifests,
)

#: experiment name → one-line description.  Every name maps to a module
#: ``repro.bench.<name>`` exposing ``run()``.
EXPERIMENTS: dict[str, str] = {
    "table1": "Entity matching F1 across the seven Magellan datasets",
    "table2": "Data cleaning: imputation accuracy and error-detection F1",
    "table3": "Data integration: transformation accuracy and schema-matching F1",
    "table4": "Entity-matching prompt ablations",
    "table5": "Restaurant imputation slices by training-set frequency",
    "table6": "Encoded functional-dependency probes across model sizes",
    "figure4": "Sample/training-efficiency trade-off",
    "figure5": "Finetuning curves: metric vs training fraction",
    "ablation_k_sweep": "Demonstration-count sweep",
    "ablation_knowledge": "Knowledge knockout: stock vs amnesiac model",
    "appendix_d": "Model-size grid across all five tasks",
    "blocking_study": "Token blocking ahead of prompted matching",
    "research_agenda": "Section 5 agenda: prototyping, selective prediction, ensembling",
    "variance_study": "Sampling-temperature variance",
}


def available_experiments() -> list[str]:
    """All registered experiment names, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **kwargs) -> list[ExperimentResult]:
    """Run one registered experiment, normalizing the result to a list."""
    if name not in EXPERIMENTS:
        known = ", ".join(available_experiments())
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    module = importlib.import_module(f"repro.bench.{name}")
    results = module.run(**kwargs)
    return results if isinstance(results, list) else [results]


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "available_experiments",
    "render_manifest",
    "render_table",
    "run_experiment",
    "summarize_manifests",
]
