"""Table 5 — Restaurant city-imputation slices by training-set frequency.

Appendix B's slice analysis: accuracy on test cities that occur 0 times,
1-10 times, and >10 times in the training split, for the prompted 175B
model versus finetuned 6.7B variants (adapter and full) trained on 10%,
50% and 100% of the training data.

Slices are evaluated over the *designed* city groups of the Restaurant
builder (held-out / rare-tail / common), whose train frequencies match the
slice definitions by construction — see
:class:`repro.datasets.imputation_datasets.RestaurantSliceInfo`.
"""

from __future__ import annotations

from repro.bench.paper_numbers import TABLE5
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.core.metrics import normalize_answer
from repro.datasets.base import ImputationExample
from repro.datasets.imputation_datasets import RestaurantSliceInfo, build_restaurant
from repro.api.backends import get_backend
from repro.fm import AdapterModel, FinetunedModel

SLICES = ("freq=0", "0<freq<=10", "freq>10")


def _slice_of(example: ImputationExample, info: RestaurantSliceInfo) -> str | None:
    city = example.answer.casefold()
    if city in info.heldout_cities:
        return "freq=0"
    if city in info.rare_cities:
        return "0<freq<=10"
    if city in info.common_cities:
        return "freq>10"
    return None


def slice_accuracies(
    predictions: list[str],
    examples: list[ImputationExample],
    info: RestaurantSliceInfo,
) -> dict[str, float]:
    hits: dict[str, int] = {name: 0 for name in SLICES}
    totals: dict[str, int] = {name: 0 for name in SLICES}
    for prediction, example in zip(predictions, examples):
        slice_name = _slice_of(example, info)
        if slice_name is None:
            continue
        totals[slice_name] += 1
        if normalize_answer(prediction) == normalize_answer(example.answer):
            hits[slice_name] += 1
    return {
        name: (100.0 * hits[name] / totals[name]) if totals[name] else 0.0
        for name in SLICES
    }


def _finetuned_predictions(model, dataset, fraction: float) -> list[str]:
    n = max(1, int(len(dataset.train) * fraction))
    model.fit_imputation(dataset.train[:n])
    return [model.predict_imputation(example) for example in dataset.test]


def run() -> ExperimentResult:
    dataset, info = build_restaurant()
    result = ExperimentResult(
        experiment="table5",
        title="Restaurant imputation slices (accuracy by train-set frequency)",
        headers=["model"] + [
            column for name in SLICES for column in (name, "paper")
        ],
        notes="paper columns: Narayan et al. VLDB 2022, Table 5",
    )

    fm = get_backend("gpt3-175b")
    run_fm = evaluate_fm("imputation", dataset, k=10, model=fm)
    rows: list[tuple[str, str, dict[str, float]]] = [
        ("175b_few_shot", "GPT3-175B (few-shot)",
         slice_accuracies(run_fm.predictions, dataset.test, info)),
    ]
    for mode, cls in (("adapter", AdapterModel), ("finetune", FinetunedModel)):
        for percent in (100, 50, 10):
            model = cls("gpt3-6.7b")
            predictions = _finetuned_predictions(model, dataset, percent / 100)
            rows.append((
                f"6.7b_{mode}_{percent}",
                f"GPT3-6.7B ({mode}, {percent}%)",
                slice_accuracies(predictions, dataset.test, info),
            ))

    for key, label, accuracies in rows:
        row: list = [label]
        paper = TABLE5[key]
        for i, name in enumerate(SLICES):
            row.append(accuracies[name])
            row.append(paper[i])
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().render())
