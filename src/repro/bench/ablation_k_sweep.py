"""Extension ablation — how many demonstrations are enough?

The paper reports k=0 and k=10 (k=3 for integration tasks); this sweep
fills in the curve: F1/accuracy as a function of the demonstration count,
for one dataset per task family.  The expected shape: a steep gain from
the first few demonstrations (format grounding + threshold calibration),
then saturation — the "rapid prototyping" regime of Section 5.1.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.datasets import load_dataset
from repro.api.backends import get_backend

K_VALUES = (0, 1, 2, 5, 10, 20)
MAX_EXAMPLES = 300

SWEEPS = (
    ("walmart_amazon", "entity_matching", "f1"),
    ("restaurant", "imputation", "accuracy"),
    ("hospital", "error_detection", "f1"),
)


def run(model: str = "gpt3-175b") -> ExperimentResult:
    fm = get_backend(model)
    result = ExperimentResult(
        experiment="ablation_k_sweep",
        title=f"Demonstration-count sweep ({model})",
        headers=["dataset", "metric"] + [f"k={k}" for k in K_VALUES],
        notes="manual demonstration curation at every k > 0",
    )
    for dataset_name, task, metric_name in SWEEPS:
        dataset = load_dataset(dataset_name)
        scores = []
        for k in K_VALUES:
            selection = "manual" if k else "random"
            run_result = evaluate_fm(
                task, dataset, k=k, model=fm, selection=selection,
                max_examples=MAX_EXAMPLES,
            )
            scores.append(round(100 * run_result.metric, 1))
        result.add_row(dataset_name, metric_name, *scores)
    return result


if __name__ == "__main__":
    print(run().render())
