"""Extension ablation — how much of imputation is *encoded knowledge*?

Section 4.2.2 conjectures that zero-shot imputation works because the
model has "encoded knowledge that is needed to correct and complete
records (e.g. functional dependencies between address and zip code)".
The simulator makes that claim directly testable: amnesia is one profile
field away.  We compare the stock 175B against a *knowledge-ablated*
twin — identical in every capability except that its knowledge floor is
raised above every fact in the world, so no lookup ever succeeds.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.datasets import load_dataset
from repro.fm import SimulatedFoundationModel
from repro.fm.profiles import get_profile

#: A frequency floor no fact reaches: total amnesia.
AMNESIA_FLOOR = 1e9


def amnesiac_model(base: str = "gpt3-175b") -> SimulatedFoundationModel:
    """The base model with its world knowledge switched off."""
    profile = replace(
        get_profile(base),
        name=f"{base}-no-knowledge",
        knowledge_floor=AMNESIA_FLOOR,
    )
    return SimulatedFoundationModel(profile)


def run(base: str = "gpt3-175b") -> ExperimentResult:
    stock = SimulatedFoundationModel(base)
    amnesiac = amnesiac_model(base)
    result = ExperimentResult(
        experiment="ablation_knowledge",
        title="Knowledge knockout: stock 175B vs the same model with amnesia",
        headers=["task", "dataset", "k", "stock", "no_knowledge"],
        notes="identical capabilities except the knowledge-recall floor",
    )
    for dataset_name, k in (("restaurant", 0), ("restaurant", 10),
                            ("buy", 0), ("buy", 10)):
        dataset = load_dataset(dataset_name)
        selection = "manual" if k else "random"
        with_k = 100 * evaluate_fm(
            "imputation", dataset, k=k, model=stock, selection=selection
        ).metric
        without = 100 * evaluate_fm(
            "imputation", dataset, k=k, model=amnesiac, selection=selection
        ).metric
        result.add_row("imputation", dataset_name, k, round(with_k, 1), round(without, 1))

    for dataset_name in ("bing_querylogs", "stackoverflow"):
        dataset = load_dataset(dataset_name)
        with_k = 100 * evaluate_fm("transformation", dataset, k=3, model=stock).metric
        without = 100 * evaluate_fm("transformation", dataset, k=3, model=amnesiac).metric
        result.add_row("transformation", dataset_name, 3, round(with_k, 1), round(without, 1))
    return result


if __name__ == "__main__":
    print(run().render())
