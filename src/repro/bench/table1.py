"""Table 1 — entity matching F1 across the seven Magellan datasets."""

from __future__ import annotations

from repro.bench.paper_numbers import TABLE1
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_ditto, evaluate_fm, evaluate_magellan
from repro.datasets import load_dataset
from repro.api.backends import get_backend

DATASETS = (
    "fodors_zagats", "beer", "itunes_amazon", "walmart_amazon",
    "dblp_acm", "dblp_scholar", "amazon_google",
)


def run(
    datasets: tuple[str, ...] = DATASETS,
    model: str = "gpt3-175b",
    max_examples: int | None = None,
) -> ExperimentResult:
    """Regenerate Table 1.

    Columns mirror the paper: Magellan, Ditto, FM zero-shot, FM k=10 with
    manually curated demonstrations — plus the published value for each.
    """
    fm = get_backend(model)
    result = ExperimentResult(
        experiment="table1",
        title="Entity matching (F1)",
        headers=[
            "dataset",
            "magellan", "paper",
            "ditto", "paper",
            "fm_k0", "paper",
            "fm_k10", "paper",
        ],
        notes="paper columns: Narayan et al. VLDB 2022, Table 1",
    )
    for name in datasets:
        dataset = load_dataset(name)
        magellan = 100 * evaluate_magellan(dataset, max_test=max_examples)
        ditto = 100 * evaluate_ditto(dataset, max_test=max_examples)
        zero_shot = 100 * evaluate_fm(
            "entity_matching", dataset, k=0, model=fm,
            max_examples=max_examples,
        ).metric
        few_shot = 100 * evaluate_fm(
            "entity_matching", dataset, k=10, model=fm, selection="manual",
            max_examples=max_examples,
        ).metric
        paper = TABLE1[name]
        result.add_row(
            name, magellan, paper[0], ditto, paper[1],
            zero_shot, paper[2], few_shot, paper[3],
        )
    return result


if __name__ == "__main__":
    print(run().render())
