"""The paper's published numbers, for side-by-side reporting.

All values transcribed from Narayan et al., VLDB 2022 (Tables 1-5).
These are *reference points*: our substrate is synthetic, so we compare
orderings and gaps, not absolute values (see EXPERIMENTS.md).
"""

# Table 1 — entity matching F1.
TABLE1 = {
    # dataset: (Magellan, Ditto, GPT3-175B k=0, GPT3-175B k=10)
    "fodors_zagats": (100.0, 100.0, 87.2, 100.0),
    "beer": (78.8, 94.37, 78.6, 100.0),
    "itunes_amazon": (91.2, 97.06, 65.9, 98.2),
    "walmart_amazon": (71.9, 86.76, 60.6, 87.0),
    "dblp_acm": (98.4, 98.99, 93.5, 96.6),
    "dblp_scholar": (92.3, 95.60, 64.6, 83.8),
    "amazon_google": (49.1, 75.58, 54.3, 63.5),
}

# Table 2 — imputation accuracy and error-detection F1.
TABLE2_IMPUTATION = {
    # dataset: (HoloClean, IMP, 175B k=0, 6.7B k=10, 175B k=10)
    "restaurant": (33.1, 77.2, 70.9, 80.2, 88.4),
    "buy": (16.2, 96.5, 84.6, 86.2, 98.5),
}
TABLE2_ERROR_DETECTION = {
    # dataset: (HoloClean, HoloDetect, 175B k=0, 6.7B k=10, 175B k=10)
    "hospital": (51.4, 94.4, 6.9, 2.1, 97.8),
    "adult": (54.5, 99.1, 0.0, 99.1, 99.1),
}

# Table 3 — transformation accuracy and schema-matching F1.
TABLE3_TRANSFORMATION = {
    # dataset: (previous SoTA = TDE, 175B k=0, 175B k=3)
    "stackoverflow": (63.0, 32.7, 65.3),
    "bing_querylogs": (32.0, 24.0, 54.0),
}
TABLE3_SCHEMA = {
    # dataset: (previous SoTA = SMAT, 175B k=0, 175B k=3)
    "synthea": (38.5, 0.5, 45.2),
}

# Table 4 — EM prompt ablations (k=10, ≤200 eval samples).
TABLE4 = {
    # row: {dataset: f1}
    "prompt1_attr_example": {"beer": 100.0, "itunes_amazon": 98.2, "walmart_amazon": 88.9},
    "prompt1_no_example_select": {"beer": 91.1, "itunes_amazon": 86.6, "walmart_amazon": 65.2},
    "prompt1_no_attr_select": {"beer": 76.9, "itunes_amazon": 94.1, "walmart_amazon": 75.0},
    "prompt1_no_attr_names": {"beer": 80.0, "itunes_amazon": 94.5, "walmart_amazon": 84.2},
    "prompt2_attr_example": {"beer": 96.3, "itunes_amazon": 84.7, "walmart_amazon": 100.0},
}

# Table 5 — Restaurant city slices by train-set frequency (accuracy).
TABLE5 = {
    # model row: (freq=0, 0<freq<=10, freq>10)
    "175b_few_shot": (100.0, 0.0, 93.7),
    "6.7b_adapter_100": (0.0, 50.0, 98.7),
    "6.7b_adapter_50": (0.0, 25.0, 98.7),
    "6.7b_adapter_10": (0.0, 0.0, 87.3),
    "6.7b_finetune_100": (0.0, 25.0, 96.2),
    "6.7b_finetune_50": (0.0, 0.0, 98.7),
    "6.7b_finetune_10": (0.0, 0.0, 89.9),
}

# Figure 5 — the qualitative claims we check programmatically.
FIGURE5_CLAIMS = (
    "full finetuning of 6.7B approaches 175B few-shot with a fraction of the data",
    "adapters close the gap on Walmart-Amazon and Restaurant but not Hospital",
    "1.3B is less sample-efficient than 6.7B",
)
