"""Appendix D — evaluating more FMs on the data-wrangling tasks.

The paper contributed its tasks to the HELM benchmark to evaluate a
broader set of models.  Here: the full size grid — every simulated model
on every task family, few-shot — the scaling picture in one table.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm
from repro.datasets import load_dataset
from repro.api.backends import get_backend

MODELS = ("gpt3-1.3b", "gpt3-6.7b", "gpt3-175b")
MAX_EXAMPLES = 300

TASKS = (
    ("EM/walmart_amazon (F1)", "walmart_amazon", "entity_matching", 10),
    ("DI/restaurant (acc)", "restaurant", "imputation", 10),
    ("ED/hospital (F1)", "hospital", "error_detection", 10),
    ("ED/adult (F1)", "adult", "error_detection", 10),
    ("SM/synthea (F1)", "synthea", "schema_matching", 3),
    ("DT/bing_querylogs (acc)", "bing_querylogs", "transformation", 3),
)


def run() -> ExperimentResult:
    models = {name: get_backend(name) for name in MODELS}
    result = ExperimentResult(
        experiment="appendix_d",
        title="Model-size grid across all five tasks (few-shot)",
        headers=["task"] + list(MODELS),
        notes="HELM-style sweep (paper Appendix D)",
    )
    for label, dataset_name, task, k in TASKS:
        dataset = load_dataset(dataset_name)
        row = [label]
        for name in MODELS:
            kwargs = {}
            if task != "transformation":
                kwargs["max_examples"] = MAX_EXAMPLES
            score = evaluate_fm(
                task, dataset, k=k, model=models[name], **kwargs
            ).metric
            row.append(round(100 * score, 1))
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().render())
