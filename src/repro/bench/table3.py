"""Table 3 — data integration: transformation accuracy and schema-matching F1."""

from __future__ import annotations

from repro.bench.paper_numbers import TABLE3_SCHEMA, TABLE3_TRANSFORMATION
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import evaluate_fm, evaluate_smat, evaluate_tde
from repro.datasets import load_dataset
from repro.api.backends import get_backend


def run_transformation_table() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table3a",
        title="Data transformation (accuracy)",
        headers=["dataset", "tde", "paper", "fm175_k0", "paper", "fm175_k3", "paper"],
        notes="previous SoTA is TDE; paper columns: Narayan et al. Table 3",
    )
    fm = get_backend("gpt3-175b")
    for name in ("stackoverflow", "bing_querylogs"):
        dataset = load_dataset(name)
        tde = 100 * evaluate_tde(dataset)
        zero_shot = 100 * evaluate_fm("transformation", dataset, k=0, model=fm).metric
        few_shot = 100 * evaluate_fm("transformation", dataset, k=3, model=fm).metric
        paper = TABLE3_TRANSFORMATION[name]
        result.add_row(name, tde, paper[0], zero_shot, paper[1], few_shot, paper[2])
    return result


def run_schema_table() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table3b",
        title="Schema matching (F1)",
        headers=["dataset", "smat", "paper", "fm175_k0", "paper", "fm175_k3", "paper"],
        notes="previous SoTA is SMAT; paper columns: Narayan et al. Table 3",
    )
    fm = get_backend("gpt3-175b")
    dataset = load_dataset("synthea")
    smat = 100 * evaluate_smat(dataset)
    zero_shot = 100 * evaluate_fm("schema_matching", dataset, k=0, model=fm).metric
    few_shot = 100 * evaluate_fm("schema_matching", dataset, k=3, model=fm).metric
    paper = TABLE3_SCHEMA["synthea"]
    result.add_row("synthea", smat, paper[0], zero_shot, paper[1], few_shot, paper[2])
    return result


def run() -> list[ExperimentResult]:
    return [run_transformation_table(), run_schema_table()]


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
