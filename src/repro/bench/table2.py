"""Table 2 — data cleaning: imputation accuracy and error-detection F1."""

from __future__ import annotations

from repro.bench.paper_numbers import TABLE2_ERROR_DETECTION, TABLE2_IMPUTATION
from repro.bench.reporting import ExperimentResult
from repro.bench.runners import (
    evaluate_fm,
    evaluate_holoclean_detection,
    evaluate_holoclean_imputation,
    evaluate_holodetect,
    evaluate_imp,
)
from repro.datasets import load_dataset
from repro.api.backends import get_backend

#: The paper evaluates Adult on a 1K-row sample "due to budget constraints";
#: we likewise cap prompted error detection at 1 000 cells.
MAX_ED_EXAMPLES = 1000


def run_imputation_table(max_examples: int | None = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2a",
        title="Data imputation (accuracy)",
        headers=[
            "dataset",
            "holoclean", "paper",
            "imp", "paper",
            "fm175_k0", "paper",
            "fm6.7_k10", "paper",
            "fm175_k10", "paper",
        ],
        notes="paper columns: Narayan et al. VLDB 2022, Table 2",
    )
    fm_large = get_backend("gpt3-175b")
    fm_small = get_backend("gpt3-6.7b")
    for name in ("restaurant", "buy"):
        dataset = load_dataset(name)
        holoclean = 100 * evaluate_holoclean_imputation(dataset)
        imp = 100 * evaluate_imp(dataset)
        zero_shot = 100 * evaluate_fm(
            "imputation", dataset, k=0, model=fm_large,
            max_examples=max_examples,
        ).metric
        small_few = 100 * evaluate_fm(
            "imputation", dataset, k=10, model=fm_small,
            max_examples=max_examples,
        ).metric
        large_few = 100 * evaluate_fm(
            "imputation", dataset, k=10, model=fm_large,
            max_examples=max_examples,
        ).metric
        paper = TABLE2_IMPUTATION[name]
        result.add_row(
            name, holoclean, paper[0], imp, paper[1], zero_shot, paper[2],
            small_few, paper[3], large_few, paper[4],
        )
    return result


def run_error_detection_table(max_examples: int | None = MAX_ED_EXAMPLES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2b",
        title="Error detection (F1)",
        headers=[
            "dataset",
            "holoclean", "paper",
            "holodetect", "paper",
            "fm175_k0", "paper",
            "fm6.7_k10", "paper",
            "fm175_k10", "paper",
        ],
        notes="paper columns: Narayan et al. VLDB 2022, Table 2",
    )
    fm_large = get_backend("gpt3-175b")
    fm_small = get_backend("gpt3-6.7b")
    for name in ("hospital", "adult"):
        dataset = load_dataset(name)
        holoclean = 100 * evaluate_holoclean_detection(dataset, max_test=max_examples)
        holodetect = 100 * evaluate_holodetect(dataset, max_test=max_examples)
        zero_shot = 100 * evaluate_fm(
            "error_detection", dataset, k=0, model=fm_large,
            max_examples=max_examples,
        ).metric
        small_few = 100 * evaluate_fm(
            "error_detection", dataset, k=10, model=fm_small,
            max_examples=max_examples,
        ).metric
        large_few = 100 * evaluate_fm(
            "error_detection", dataset, k=10, model=fm_large,
            max_examples=max_examples,
        ).metric
        paper = TABLE2_ERROR_DETECTION[name]
        result.add_row(
            name, holoclean, paper[0], holodetect, paper[1], zero_shot, paper[2],
            small_few, paper[3], large_few, paper[4],
        )
    return result


def run(max_examples: int | None = MAX_ED_EXAMPLES) -> list[ExperimentResult]:
    return [run_imputation_table(), run_error_detection_table(max_examples)]


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
