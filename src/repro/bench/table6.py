"""Table 6 — qualitative functional-dependency probes across model sizes.

Three imputation prompts exercising geography knowledge: address+state →
zip code, address+phone → city (twice).  Larger models recall the exact
dependency; smaller ones produce answers of the right semantic *type* but
wrong identity — the paper's qualitative observation.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.api.backends import get_backend

PROBES = (
    ("Address: 1720 university blvd. State: AL. ZipCode?", "zip in AL (352xx)"),
    ("Address: 26025 pacific coast hwy. Phone number: 310/456-5733. City?", "Malibu"),
    ("Address: 804 north point st. Phone number: 415-775-7036. City?", "San Francisco"),
)

MODELS = ("gpt3-175b", "gpt3-6.7b", "gpt3-1.3b")


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table6",
        title="Encoded functional dependencies (qualitative)",
        headers=["prompt", "expected"] + list(MODELS),
        notes="paper: Narayan et al. VLDB 2022, Table 6 (qualitative)",
    )
    models = {name: get_backend(name) for name in MODELS}
    for prompt, expected in PROBES:
        row: list = [prompt[:46] + "…", expected]
        for name in MODELS:
            row.append(models[name].complete(prompt))
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().render())
