"""Result containers and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table (the benches print these)."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def render_row(values: list[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table/figure: measured rows + paper reference."""

    experiment: str                      # e.g. "table1"
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        body = render_table(self.headers, self.rows)
        parts = [f"== {self.experiment}: {self.title} ==", body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def cell(self, row_key, column: str):
        """Value at (first row whose first cell == row_key, column)."""
        column_index = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[column_index]
        raise KeyError(f"no row {row_key!r} in {self.experiment}")
