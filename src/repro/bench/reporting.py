"""Result containers, plain-text table rendering, manifest summaries."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def bench_metrics(result) -> dict:
    """Flatten one :class:`ExperimentResult` into a metrics dict.

    Every numeric cell becomes ``"<row key>/<column>": value`` — a
    machine-readable mirror of the rendered table, so CI and sweep
    tooling can diff bench outputs without parsing ASCII art.
    """
    metrics: dict[str, float] = {}
    for row in result.rows:
        key = str(row[0])
        for header, value in zip(result.headers[1:], row[1:]):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{key}/{header}"] = value
    return metrics


def write_bench_json(path, name: str, metrics: dict) -> None:
    """Write one bench's machine-readable summary:
    ``{"bench": name, "metrics": {...}}``."""
    payload = {"bench": name, "metrics": metrics}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table (the benches print these)."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def render_row(values: list[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table/figure: measured rows + paper reference."""

    experiment: str                      # e.g. "table1"
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        body = render_table(self.headers, self.rows)
        parts = [f"== {self.experiment}: {self.title} ==", body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def cell(self, row_key, column: str):
        """Value at (first row whose first cell == row_key, column)."""
        column_index = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[column_index]
        raise KeyError(f"no row {row_key!r} in {self.experiment}")


def _as_manifest_dict(manifest) -> dict:
    return manifest.to_dict() if hasattr(manifest, "to_dict") else dict(manifest)


def render_manifest(manifest) -> str:
    """One-paragraph text summary of a run manifest.

    Accepts a :class:`~repro.core.manifest.RunManifest` or its dict form
    (e.g. re-read from the ``--manifest`` JSON).
    """
    m = _as_manifest_dict(manifest)
    phases = m.get("phases", {})
    phase_text = " | ".join(
        f"{name} {seconds:.3f}s" for name, seconds in phases.items()
    )
    requests = m.get("requests", {})
    lines = [
        f"== run manifest: {m['task']}/{m['dataset']} "
        f"({m['model']}, k={m['k']}, {m['selection']}) ==",
        f"{m['metric_name']}: {100 * m['metric']:.1f} "
        f"on {m['n_examples']} examples ({m['split']} split, seed {m['seed']})",
        f"phases: {phase_text}  (wall {m['wall_clock_s']:.3f}s, "
        f"workers {m['workers']})",
        f"requests: {requests.get('n_requests', 0)} "
        f"({requests.get('n_failures', 0)} failures, "
        f"{requests.get('n_retries', 0)} retries)",
    ]
    cache = m.get("cache")
    if cache:
        lines.append(
            f"cache: {cache['hits']}/{cache['lookups']} hits "
            f"({100 * cache['hit_rate']:.1f}%), "
            f"{cache['backend_calls']} backend calls, "
            f"{cache['entries']} entries"
        )
    prefix = m.get("prefix_cache")
    if prefix:
        lines.append(
            f"prefix cache: {prefix['hits']}/"
            f"{prefix['hits'] + prefix['misses']} hits, "
            f"{prefix['prefix_tokens']}-token prefix, "
            f"{prefix['tokens_saved']} prompt tokens saved"
        )
    usage = m.get("usage") or {}
    if usage:
        tokens = sum(entry["total_tokens"] for entry in usage.values())
        cost = f"${m['cost_usd']:.4f}"
        if m.get("unknown_price"):
            cost += " (some models unpriced)"
        lines.append(f"tokens: {tokens}, cost {cost}")
    if m.get("degraded"):
        quarantine = m.get("quarantine") or []
        lines.append(
            f"degraded: {len(quarantine)} quarantined, "
            f"coverage {100 * m.get('coverage', 1.0):.1f}%"
        )
    lines.extend(_resilience_lines(m))
    faults = m.get("faults")
    if faults:
        injected = faults.get("injected") or {}
        injected_text = (
            ", ".join(
                f"{kind}={count}" for kind, count in sorted(injected.items())
            )
            or "none"
        )
        lines.append(
            f"faults: profile {faults.get('profile')} "
            f"(seed {faults.get('seed')}), injected: {injected_text}"
        )
    return "\n".join(lines)


def _resilience_lines(m: dict) -> list[str]:
    """Service-level summary lines shared by manifest and chaos reports."""
    lines: list[str] = []
    slo = m.get("slo")
    if slo:
        status = "EXPIRED" if slo.get("expired") else "met"
        lines.append(
            f"slo: deadline {slo.get('budget_s', 0.0):.3f}s, "
            f"elapsed {slo.get('elapsed_s', 0.0):.3f}s ({status})"
        )
    hedges = m.get("hedges")
    if hedges:
        lines.append(
            f"hedges: {hedges.get('fired', 0)} fired, "
            f"{hedges.get('wins', 0)} won "
            f"(delay {1000 * hedges.get('delay_s', 0.0):.1f}ms)"
        )
    shed = m.get("shed")
    if shed:
        line = (
            f"admission: {shed.get('admitted', 0)} admitted, "
            f"{shed.get('shed', 0)} shed"
        )
        limiter = shed.get("limiter")
        if limiter:
            line += (
                f" (AIMD limit {limiter.get('limit', 0.0):.1f}, "
                f"{limiter.get('waits', 0)} waits)"
            )
        lines.append(line)
    served = m.get("served_by_tier")
    if served:
        tiers = ", ".join(
            f"{name}={count}" for name, count in served.items()
        )
        lines.append(f"served by tier: {tiers}")
    cascade = m.get("cascade")
    if cascade:
        calibrated = " calibrated" if cascade.get("calibrated") else ""
        if cascade.get("threshold") is not None:
            threshold_text = f"threshold {cascade['threshold']:.3f}"
        else:
            threshold_text = "thresholds [{}]".format(
                ", ".join(
                    f"{value:.3f}" for value in cascade.get("thresholds", [])
                )
            )
        lines.append(
            f"cascade: {threshold_text}"
            f"{calibrated}, "
            f"{cascade.get('escalated', 0)} escalated "
            f"({100 * cascade.get('escalation_rate', 0.0):.1f}%), "
            f"est ${cascade.get('est_cost_usd', 0.0):.4f} vs "
            f"${cascade.get('est_baseline_cost_usd', 0.0):.4f} primary-only "
            f"({100 * cascade.get('est_savings_rate', 0.0):.0f}% saved)"
        )
    return lines


def render_chaos_report(run, baseline=None) -> str:
    """Resilience report for one chaos run (``repro chaos`` output).

    ``run`` is the faulted :class:`~repro.core.tasks.common.TaskRun`;
    ``baseline``, when given, is the fault-free run of the same
    configuration and turns the report's last line into the degradation
    delta (faulted metric minus clean metric).
    """
    manifest = _as_manifest_dict(run.manifest) if run.manifest else {}
    faults = manifest.get("faults") or {}
    injected = faults.get("injected") or {}
    requests = manifest.get("requests") or {}
    lines = [
        f"== chaos report: {run.task}/{run.dataset} ({run.model}) ==",
        f"profile: {faults.get('profile', 'none')} "
        f"(seed {faults.get('seed', '-')})",
        "faults injected: "
        + (
            ", ".join(
                f"{kind}={count}" for kind, count in sorted(injected.items())
            )
            or "none"
        ),
        f"requests: {requests.get('n_requests', 0)} "
        f"({requests.get('n_failures', 0)} failures, "
        f"{requests.get('n_retries', 0)} retries)",
        f"quarantined: {len(run.quarantine)} of {run.n_examples} examples "
        f"(coverage {100 * run.coverage:.1f}%)",
    ]
    for record in run.quarantine:
        lines.append(
            f"  - example {record.index}: {record.error_type} "
            f"[{record.stage}, {record.attempts} attempts]"
        )
    breaker = faults.get("breaker")
    if breaker:
        lines.append(
            f"circuit breaker: {breaker.get('state')} "
            f"({breaker.get('trips', 0)} trips, "
            f"{breaker.get('rejections', 0)} rejections, "
            f"{breaker.get('probes', 0)} probes)"
        )
    lines.extend(_resilience_lines(manifest))
    metric_text = f"{run.metric_name}={100 * run.metric:.1f}"
    if baseline is not None:
        delta = 100 * (run.metric - baseline.metric)
        metric_text += (
            f" vs fault-free {100 * baseline.metric:.1f} "
            f"(degradation {delta:+.1f})"
        )
    lines.append(f"metric: {metric_text}")
    return "\n".join(lines)


def summarize_manifests(
    experiment: str,
    manifests: list,
    wall_clock_s: float,
    workers: int,
) -> dict:
    """Experiment-level manifest: per-run manifests plus totals.

    This is the JSON shape ``repro bench --manifest DIR`` writes — one
    file per experiment, validated in CI against the run-manifest schema
    (each entry of ``runs``) plus the aggregate keys.
    """
    runs = [_as_manifest_dict(manifest) for manifest in manifests]
    hits = sum((run.get("cache") or {}).get("hits", 0) for run in runs)
    lookups = sum((run.get("cache") or {}).get("lookups", 0) for run in runs)
    n_examples = sum(run.get("n_examples", 0) for run in runs)
    n_quarantined = sum(len(run.get("quarantine") or []) for run in runs)
    return {
        "experiment": experiment,
        "wall_clock_s": wall_clock_s,
        "workers": workers,
        "n_runs": len(runs),
        "runs": runs,
        "totals": {
            "cost_usd": sum(run.get("cost_usd", 0.0) for run in runs),
            "unknown_price": any(run.get("unknown_price") for run in runs),
            "tokens": sum(
                entry["total_tokens"]
                for run in runs
                for entry in (run.get("usage") or {}).values()
            ),
            "requests": sum(
                run.get("requests", {}).get("n_requests", 0) for run in runs
            ),
            "retries": sum(
                run.get("requests", {}).get("n_retries", 0) for run in runs
            ),
            "failures": sum(
                run.get("requests", {}).get("n_failures", 0) for run in runs
            ),
            "cache_hits": hits,
            "cache_lookups": lookups,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "quarantined": n_quarantined,
            "degraded": any(run.get("degraded") for run in runs),
            "coverage": (
                (n_examples - n_quarantined) / n_examples
                if n_examples
                else 1.0
            ),
        },
    }
