"""Merge per-shard journals into one resumable RunManifest.

Merge rules (DESIGN §4e):

* Every shard journal is read with the *tolerant* loader (bad-CRC or
  torn records are skipped exactly as :class:`~repro.core.checkpoint.
  RunCheckpoint` would skip them) and verified against its per-shard
  fingerprint and the rebuilt prompts' digests — a journaled response
  only counts if it provably belongs to this plan, this shard, and this
  prompt.
* A run merges only when every global index is covered by a journaled
  completion or quarantine; otherwise :class:`IncompleteRunError` lists
  what's missing (the CLI turns that into "re-run with --resume").
* Predictions are parsed and scored by the same TaskSpec code paths as
  a single-process run, in global index order — which is what makes
  "byte-identical to an unfaulted ``run_task``" a positional comparison
  rather than a multiset one.
* The call logs under ``calls/`` are aggregated across every worker
  incarnation that ever ran in this directory; a prompt digest appearing
  more than once is a duplicate backend call.  The merged manifest's
  ``shards.duplicate_backend_calls`` pins the exactly-once invariant.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field

from repro.core.checkpoint import (
    CheckpointCorruptionWarning,
    _record_crc,
    prompt_sha,
)
from repro.core.manifest import RunManifest, jsonable
from repro.shard.plan import ShardPlan

__all__ = [
    "IncompleteRunError",
    "MergedRun",
    "Workload",
    "count_duplicate_calls",
    "merge_run",
    "read_journal",
    "resolve_workload",
]


class IncompleteRunError(RuntimeError):
    """Some shard is missing journaled work; resume before merging."""

    def __init__(self, message: str, missing: dict[int, int]):
        super().__init__(message)
        #: shard_id -> number of examples still pending.
        self.missing = missing


def read_journal(path, fingerprint: str) -> tuple[dict, dict]:
    """Read-only tolerant journal load: (completed, quarantined) by index.

    Mirrors :meth:`RunCheckpoint._load`'s recovery semantics (torn final
    line dropped, corrupt mid-file records skipped with a warning, CRC
    verified when present) without opening the file for append — the
    merge and the workers' completeness scans must never mutate
    journals.  A missing file is simply an empty journal.  A journal
    written under a different fingerprint contributes nothing (it
    belongs to another run; resume will redo the work).
    """
    completed: dict[int, dict] = {}
    quarantined: dict[int, dict] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return completed, quarantined
    lines = raw.split("\n")
    if lines and lines[-1]:
        try:
            json.loads(lines[-1])
        except json.JSONDecodeError:
            lines = lines[:-1]
    header_ok = False
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            warnings.warn(
                f"shard journal {path} line {lineno}: unparseable record "
                f"skipped",
                CheckpointCorruptionWarning,
                stacklevel=2,
            )
            continue
        if not isinstance(record, dict):
            continue
        if "crc" in record and record["crc"] != _record_crc(record):
            warnings.warn(
                f"shard journal {path} line {lineno}: CRC mismatch — "
                f"record skipped, its example will re-run",
                CheckpointCorruptionWarning,
                stacklevel=2,
            )
            continue
        kind = record.get("type")
        if kind == "header":
            header_ok = record.get("fingerprint") == fingerprint
        elif kind == "example" and header_ok:
            completed[int(record["index"])] = record
        elif kind == "quarantine" and header_ok:
            quarantined[int(record["index"])] = record
    return completed, quarantined


# ---------------------------------------------------------------------------
# Workload resolution (shared by workers and the merge)


@dataclass
class Workload:
    """The deterministically-rebuilt workload of one shard plan."""

    spec: object
    dataset: object
    config: object
    demonstrations: list
    examples: list
    _prompts: dict = field(default_factory=dict)

    def prompt_for(self, index: int, plan: ShardPlan) -> str:
        prompt = self._prompts.get(index)
        if prompt is None:
            prompt = self.spec.build_prompt(
                self.examples[index],
                self.demonstrations,
                self.config,
                plan.k,
            )
            self._prompts[index] = prompt
        return prompt


def resolve_workload(plan: ShardPlan, model=None) -> Workload:
    """Rebuild spec/dataset/config/demonstrations from the plan alone.

    Every worker process and the merge call this with identical inputs
    and — because dataset generation, demonstration selection (random,
    seeded), and prompt building are all deterministic — get
    byte-identical prompts.  That shared derivation is what lets shards
    ship *indices* instead of rows.
    """
    from repro.core.tasks.common import subsample
    from repro.core.tasks.engine import select_demonstrations
    from repro.core.tasks.spec import get_task
    from repro.datasets import load_dataset

    if plan.selection not in ("random",) and plan.k > 0:
        raise ValueError(
            f"sharded runs support selection='random' (or k=0), not "
            f"{plan.selection!r}: manual curation scores candidates "
            f"against the model inside every worker, which would "
            f"multiply backend calls across the fleet"
        )
    spec = get_task(plan.task)
    dataset = load_dataset(plan.dataset, scale=plan.scale)
    config = spec.default_config(dataset)
    examples = subsample(
        spec.examples_of(dataset, plan.split), plan.max_examples
    )
    if len(examples) != plan.n_examples:
        raise RuntimeError(
            f"dataset {plan.dataset!r} resolved to {len(examples)} "
            f"examples but the plan was built over {plan.n_examples} — "
            f"generator drift; start a fresh run directory"
        )
    demonstrations = select_demonstrations(
        spec, model, dataset, plan.k, config, plan.selection, plan.seed
    )
    return Workload(
        spec=spec,
        dataset=dataset,
        config=config,
        demonstrations=demonstrations,
        examples=examples,
    )


# ---------------------------------------------------------------------------
# Call-log accounting


def count_duplicate_calls(calls_dir) -> tuple[int, int]:
    """(total successful backend calls, duplicates) across all workers."""
    counts: dict[str, int] = {}
    try:
        names = sorted(os.listdir(calls_dir))
    except FileNotFoundError:
        return 0, 0
    for name in names:
        if not name.endswith(".calls"):
            continue
        with open(
            os.path.join(calls_dir, name), "r", encoding="utf-8"
        ) as handle:
            for line in handle:
                sha = line.strip()
                if sha:
                    counts[sha] = counts.get(sha, 0) + 1
    total = sum(counts.values())
    duplicates = sum(count - 1 for count in counts.values() if count > 1)
    return total, duplicates


# ---------------------------------------------------------------------------
# The merge


@dataclass
class MergedRun:
    """The scored outcome of a completed sharded run."""

    predictions: list
    labels: list
    metric: float
    metric_name: str
    n_examples: int
    manifest: RunManifest
    duplicate_backend_calls: int
    backend_calls_logged: int

    def describe(self) -> str:
        shards = self.manifest.shards or {}
        return (
            f"{self.manifest.task}/{self.manifest.dataset} "
            f"{self.manifest.model} (k={self.manifest.k}): "
            f"{self.metric_name}={100 * self.metric:.1f} over "
            f"{self.n_examples} examples in {shards.get('n_shards', '?')} "
            f"shards — duplicates={self.duplicate_backend_calls}, "
            f"restarts={shards.get('restarts', 0)}, "
            f"chaos_kills={shards.get('chaos_kills', 0)}"
        )


def merge_run(
    run_dir,
    plan: ShardPlan,
    *,
    n_workers: int = 1,
    restarts: int = 0,
    reclaimed_leases: int = 0,
    resumed: bool = False,
    wall_clock_s: float = 0.0,
    faults: dict | None = None,
    workload: Workload | None = None,
) -> MergedRun:
    """Fuse every shard journal into one scored, schema-valid manifest."""
    from repro.shard.worker import CALL_DIR, CHAOS_DIR, journal_path

    run_dir = os.fspath(run_dir)
    if workload is None:
        workload = resolve_workload(plan)
    spec = workload.spec

    responses: dict[int, str] = {}
    quarantine_records: list[dict] = []
    per_shard: list[dict] = []
    missing: dict[int, int] = {}
    for shard in plan.shards:
        completed, quarantined = read_journal(
            journal_path(run_dir, shard.shard_id),
            plan.shard_fingerprint(shard.shard_id),
        )
        n_completed = 0
        n_missing = 0
        for index in shard.indices:
            record = completed.get(index)
            if record is not None and record.get("prompt_sha") == prompt_sha(
                workload.prompt_for(index, plan)
            ):
                responses[index] = record["response"]
                n_completed += 1
            elif index in quarantined:
                quarantine_records.append(quarantined[index])
            else:
                n_missing += 1
        if n_missing:
            missing[shard.shard_id] = n_missing
        per_shard.append(
            {
                "shard_id": shard.shard_id,
                "start": shard.start,
                "stop": shard.stop,
                "n_examples": shard.n_examples,
                "n_completed": n_completed,
                "n_quarantined": sum(
                    1 for index in shard.indices if index in quarantined
                ),
            }
        )
    if missing:
        detail = ", ".join(
            f"shard {shard_id}: {count} pending"
            for shard_id, count in sorted(missing.items())
        )
        raise IncompleteRunError(
            f"cannot merge an incomplete run ({detail}); re-invoke with "
            f"--resume to finish it",
            missing,
        )

    # Parse + score through the same spec paths as run_task.
    predictions: list = [None] * plan.n_examples
    quarantined_indices = {
        int(record["index"]) for record in quarantine_records
    }
    for index, response in responses.items():
        predictions[index] = spec.parse_response(response)
    labels = [spec.label_of(example) for example in workload.examples]
    survivors = [
        index
        for index in range(plan.n_examples)
        if index not in quarantined_indices
    ]
    if quarantined_indices:
        metric, _details = spec.score(
            [predictions[index] for index in survivors],
            [labels[index] for index in survivors],
            [workload.examples[index] for index in survivors],
        )
    else:
        metric, _details = spec.score(
            predictions, labels, workload.examples
        )
    coverage = (
        len(survivors) / plan.n_examples if plan.n_examples else 1.0
    )

    backend_calls, duplicates = count_duplicate_calls(
        os.path.join(run_dir, CALL_DIR)
    )
    try:
        chaos_kills = sum(
            1
            for name in os.listdir(os.path.join(run_dir, CHAOS_DIR))
            if name.endswith(".killed")
        )
    except FileNotFoundError:
        chaos_kills = 0

    shards_block = {
        "n_shards": plan.n_shards,
        "n_workers": n_workers,
        "plan_fingerprint": plan.fingerprint,
        "restarts": restarts,
        "reclaimed_leases": reclaimed_leases,
        "chaos_kills": chaos_kills,
        "backend_calls_logged": backend_calls,
        "duplicate_backend_calls": duplicates,
        "resumed": resumed,
        "per_shard": per_shard,
    }
    manifest = RunManifest(
        task=spec.name,
        dataset=workload.dataset.name,
        model=plan.model,
        k=plan.k,
        selection=plan.selection,
        split=plan.split,
        seed=plan.seed,
        workers=n_workers,
        n_examples=plan.n_examples,
        metric_name=spec.metric_name,
        metric=metric,
        phases={
            "selection": 0.0,
            "prompting": 0.0,
            "completion": wall_clock_s,
            "scoring": 0.0,
        },
        wall_clock_s=wall_clock_s,
        requests={
            "n_requests": backend_calls,
            "n_failures": len(quarantine_records),
            "n_retries": 0,
            "total_s": wall_clock_s,
            "mean_s": (wall_clock_s / backend_calls) if backend_calls else 0.0,
            "max_s": 0.0,
        },
        cache=None,
        usage={},
        cost_usd=0.0,
        unknown_price=False,
        config=jsonable(workload.config),
        quarantine=[
            {
                "index": int(record["index"]),
                "error_type": record.get("error_type", "Error"),
                "error": record.get("error", ""),
                "attempts": int(record.get("attempts", 1)),
                "stage": record.get("stage", "completion"),
            }
            for record in sorted(
                quarantine_records, key=lambda record: int(record["index"])
            )
        ],
        degraded=bool(quarantined_indices),
        coverage=coverage,
        faults=faults,
        shards=shards_block,
    )
    return MergedRun(
        predictions=predictions,
        labels=labels,
        metric=metric,
        metric_name=spec.metric_name,
        n_examples=plan.n_examples,
        manifest=manifest,
        duplicate_backend_calls=duplicates,
        backend_calls_logged=backend_calls,
    )
