"""The shard supervisor: spawn, watch, restart, reclaim, merge.

The supervisor owns the run directory.  On a fresh run it writes
``plan.json`` (atomic) and the directory skeleton; on ``--resume`` it
verifies the existing plan against the requested flags and refuses to
mix runs.  It then spawns N worker *processes* (``python -m repro
shard-worker``) and sits in a monitor loop:

* a worker that exits non-zero (crash, SIGKILL) is restarted with
  bounded exponential backoff until the global restart budget is spent;
* expired or dead-owner leases are swept every pass so surviving
  workers can steal orphaned shards immediately (work stealing);
* the loop ends when every shard's journal is complete — or when no
  workers remain and the budget is gone, in which case
  :class:`ShardRunIncompleteError` tells the caller to ``--resume``.

The supervisor itself holds **no run state that matters**: every
byte of progress lives in the journals.  SIGKILL the supervisor and the
workers notice the re-parenting at their next journal boundary, release
their leases, and exit cleanly; ``--resume`` starts a fresh supervisor
over the same directory and the run continues exactly where the
journals say it stopped.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.shard.lease import LeaseBoard
from repro.shard.merge import MergedRun, merge_run, resolve_workload
from repro.shard.plan import ShardPlan
from repro.shard.worker import (
    CALL_DIR,
    CHAOS_DIR,
    JOURNAL_DIR,
    LEASE_DIR,
    PLAN_FILE,
    journal_path,
)

__all__ = ["ShardRunIncompleteError", "ShardSupervisor"]


class ShardRunIncompleteError(RuntimeError):
    """Workers are gone but shards remain; re-invoke with ``--resume``."""


class _WorkerSlot:
    """One supervised worker identity (stable across restarts)."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.process: subprocess.Popen | None = None
        self.restarts = 0
        self.next_start_at = 0.0
        self.gave_up = False


class ShardSupervisor:
    """Drive one sharded run to completion (see module docstring)."""

    def __init__(
        self,
        run_dir,
        plan: ShardPlan,
        *,
        n_workers: int = 2,
        executor_kind: str = "thread",
        intra_workers: int = 1,
        lease_ttl_s: float = 10.0,
        max_restarts: int = 8,
        restart_backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
        chaos_profile: str | None = None,
        chaos_seed: int = 0,
        resume: bool = False,
        poll_interval_s: float = 0.02,
    ):
        self.run_dir = os.fspath(run_dir)
        self.plan = plan
        self.n_workers = max(1, int(n_workers))
        self.executor_kind = executor_kind
        self.intra_workers = max(1, int(intra_workers))
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_restarts = int(max_restarts)
        self.restart_backoff_s = float(restart_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.chaos_profile = chaos_profile
        self.chaos_seed = int(chaos_seed)
        self.resume = bool(resume)
        self.poll_interval_s = float(poll_interval_s)
        self.restarts = 0
        self.board = LeaseBoard(
            os.path.join(self.run_dir, LEASE_DIR), ttl_s=self.lease_ttl_s
        )
        # Chaos must never corrupt the merged result: only profiles whose
        # faults are fully absorbable (transients that retries recover,
        # process kills that restarts recover) are legal here.
        if chaos_profile is not None and chaos_profile != "none":
            from repro.api.faults import get_fault_profile

            profile = get_fault_profile(chaos_profile)
            dirty = {
                "garbage": profile.garbage,
                "truncate": profile.truncate,
                "unrecoverable": profile.unrecoverable,
            }
            bad = [name for name, rate in dirty.items() if rate > 0.0]
            if bad:
                raise ValueError(
                    f"chaos profile {profile.name!r} injects "
                    f"response-corrupting or unrecoverable faults "
                    f"({', '.join(bad)}); sharded runs guarantee "
                    f"byte-identical predictions and only accept "
                    f"fully-recoverable profiles (e.g. 'shard-heavy')"
                )

    # -- layout ------------------------------------------------------------

    def _prepare_run_dir(self) -> None:
        plan_path = os.path.join(self.run_dir, PLAN_FILE)
        os.makedirs(self.run_dir, exist_ok=True)
        for sub in (JOURNAL_DIR, LEASE_DIR, CALL_DIR, CHAOS_DIR):
            os.makedirs(os.path.join(self.run_dir, sub), exist_ok=True)
        if os.path.exists(plan_path):
            existing = ShardPlan.load(plan_path)
            self.plan.require_same(existing)
            self.resume = True
        else:
            self.plan.save(plan_path)

    # -- progress ----------------------------------------------------------

    def _shards_pending(self, workload) -> dict[int, int]:
        """shard_id -> examples not yet journaled (empty == run done)."""
        from repro.shard.merge import read_journal

        pending: dict[int, int] = {}
        for shard in self.plan.shards:
            completed, quarantined = read_journal(
                journal_path(self.run_dir, shard.shard_id),
                self.plan.shard_fingerprint(shard.shard_id),
            )
            done = set(completed) | set(quarantined)
            n_pending = sum(
                1 for index in shard.indices if index not in done
            )
            if n_pending:
                pending[shard.shard_id] = n_pending
        return pending

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "shard-worker",
            "--run-dir",
            self.run_dir,
            "--worker-id",
            slot.worker_id,
            "--executor",
            self.executor_kind,
            "--intra-workers",
            str(self.intra_workers),
            "--lease-ttl-s",
            str(self.lease_ttl_s),
            "--supervisor-pid",
            str(os.getpid()),
        ]
        if self.chaos_profile is not None:
            argv += [
                "--chaos",
                self.chaos_profile,
                "--chaos-seed",
                str(self.chaos_seed),
            ]
        slot.process = subprocess.Popen(argv)

    def _tend_workers(self, now: float) -> int:
        """Restart dead workers within budget; return live-worker count."""
        live = 0
        for slot in self._slots:
            process = slot.process
            if process is not None and process.poll() is None:
                live += 1
                continue
            returncode = None if process is None else process.returncode
            if returncode == 0:
                continue  # finished cleanly (no shards left for it)
            if slot.gave_up:
                continue
            if process is not None and slot.next_start_at == 0.0:
                # Just found it dead: schedule the restart with backoff.
                if self.restarts >= self.max_restarts:
                    slot.gave_up = True
                    continue
                self.restarts += 1
                slot.restarts += 1
                delay = min(
                    self.max_backoff_s,
                    self.restart_backoff_s * (2 ** (slot.restarts - 1)),
                )
                slot.next_start_at = now + delay
                slot.process = None
                continue
            if now >= slot.next_start_at:
                slot.next_start_at = 0.0
                self._spawn(slot)
                live += 1
        return live

    # -- the run -----------------------------------------------------------

    def run(self) -> MergedRun:
        started = time.monotonic()
        self._prepare_run_dir()
        workload = resolve_workload(self.plan)

        self._slots = [
            _WorkerSlot(f"w{index}") for index in range(self.n_workers)
        ]
        for slot in self._slots:
            self._spawn(slot)

        try:
            while True:
                now = time.monotonic()
                live = self._tend_workers(now)
                self.board.sweep()
                pending = self._shards_pending(workload)
                if not pending:
                    break
                restartable = any(
                    not slot.gave_up
                    and (
                        slot.process is None
                        or slot.process.poll() is None
                        or slot.process.returncode != 0
                    )
                    for slot in self._slots
                )
                if live == 0 and not restartable:
                    detail = ", ".join(
                        f"shard {shard_id}: {count} pending"
                        for shard_id, count in sorted(pending.items())
                    )
                    raise ShardRunIncompleteError(
                        f"all workers exhausted their restart budget "
                        f"({self.max_restarts}) with work remaining "
                        f"({detail}); re-invoke with --resume"
                    )
                time.sleep(self.poll_interval_s)
        finally:
            self._reap()

        faults = None
        if self.chaos_profile is not None and self.chaos_profile != "none":
            from repro.api.faults import FaultPlan

            faults = FaultPlan(
                self.chaos_profile, seed=self.chaos_seed
            ).describe()
        return merge_run(
            self.run_dir,
            self.plan,
            n_workers=self.n_workers,
            restarts=self.restarts,
            reclaimed_leases=self.board.reclaimed,
            resumed=self.resume,
            wall_clock_s=time.monotonic() - started,
            faults=faults,
            workload=workload,
        )

    def _reap(self) -> None:
        """Wait for still-running workers (they exit once shards run dry)."""
        deadline = time.monotonic() + max(5.0, 2 * self.lease_ttl_s)
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            remaining = deadline - time.monotonic()
            try:
                process.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
