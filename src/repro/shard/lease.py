"""File-based shard leases: who may work a shard, and for how long.

One JSON file per shard under ``leases/`` is the whole coordination
substrate — no sockets, no shared memory, nothing a SIGKILL can corrupt.
The protocol:

* **acquire** — ``O_CREAT | O_EXCL``: exactly one creator wins.  Workers
  scan shards in order and acquire the first unleased incomplete one, so
  work stealing falls out of the data structure (a surviving worker's
  next scan picks up whatever a dead worker dropped).
* **heartbeat/renew** — the owner rewrites its lease atomically
  (temp + ``os.replace``) with a pushed-out ``expires_at`` while it
  works.  A renew that discovers a different owner token raises
  :class:`LeaseLostError`: the worker was presumed dead and must abandon
  the shard (its journal appends so far are still valid — journaling,
  not leasing, is what makes the run exactly-once).
* **reclaim/steal** — a lease whose ``expires_at`` passed *or* whose
  owner pid no longer exists is stolen by atomically renaming the lease
  file to a per-stealer tombstone; ``os.rename`` succeeds for exactly
  one stealer, which then acquires fresh.  The pid check makes recovery
  after SIGKILL immediate instead of one TTL later.

Leases are *advisory* for scheduling and liveness; correctness never
depends on them.  The exactly-once argument (DESIGN §4e) rests on the
append-only journals alone.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

__all__ = ["Lease", "LeaseBoard", "LeaseLostError"]


class LeaseLostError(RuntimeError):
    """The shard's lease now belongs to someone else; abandon it."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@dataclass(frozen=True)
class Lease:
    """One granted claim on one shard."""

    shard_id: int
    owner: str
    pid: int
    token: str
    acquired_at: float
    renewed_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LeaseBoard:
    """The lease directory of one sharded run."""

    def __init__(self, directory, ttl_s: float = 10.0, clock=time.time):
        self.directory = os.fspath(directory)
        self.ttl_s = float(ttl_s)
        self.clock = clock
        #: Leases this board stole from expired/dead owners (tally only).
        self.reclaimed = 0
        os.makedirs(self.directory, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard_{shard_id:04d}.lease")

    # -- inspection --------------------------------------------------------

    def read(self, shard_id: int) -> Lease | None:
        """The current lease on ``shard_id``, or ``None`` (unleased or a
        torn/in-flight write, which the caller treats as leased-by-other
        and simply retries later)."""
        try:
            with open(self._path(shard_id), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return Lease(**payload)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, TypeError, KeyError):
            return None

    def holder_dead(self, lease: Lease) -> bool:
        return lease.expired(self.clock()) or not _pid_alive(lease.pid)

    # -- protocol ----------------------------------------------------------

    def _write_new(self, shard_id: int, owner: str) -> Lease | None:
        now = self.clock()
        lease = Lease(
            shard_id=shard_id,
            owner=owner,
            pid=os.getpid(),
            token=os.urandom(8).hex(),
            acquired_at=now,
            renewed_at=now,
            expires_at=now + self.ttl_s,
        )
        try:
            fd = os.open(
                self._path(shard_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(asdict(lease), handle)
            handle.write("\n")
        return lease

    def try_acquire(self, shard_id: int, owner: str) -> Lease | None:
        """Claim ``shard_id`` if unleased (stealing a dead owner's lease);
        ``None`` when a live owner holds it or we lost the race."""
        lease = self._write_new(shard_id, owner)
        if lease is not None:
            return lease
        current = self.read(shard_id)
        if current is None:
            # Vanished between create-fail and read (owner released or a
            # stealer won); try the fresh-create path once more.
            return self._write_new(shard_id, owner)
        if not self.holder_dead(current):
            return None
        # Steal: the rename is atomic, so exactly one stealer proceeds.
        tombstone = (
            f"{self._path(shard_id)}.stolen.{os.getpid()}.{os.urandom(4).hex()}"
        )
        try:
            os.rename(self._path(shard_id), tombstone)
        except FileNotFoundError:
            return None  # someone else stole it first
        try:
            os.unlink(tombstone)
        except FileNotFoundError:
            pass
        self.reclaimed += 1
        return self._write_new(shard_id, owner)

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: push ``expires_at`` out by one TTL, atomically."""
        current = self.read(lease.shard_id)
        if current is None or current.token != lease.token:
            raise LeaseLostError(
                f"shard {lease.shard_id} lease now held by "
                f"{getattr(current, 'owner', None)!r} (we were presumed "
                f"dead); abandoning the shard"
            )
        now = self.clock()
        renewed = Lease(
            shard_id=lease.shard_id,
            owner=lease.owner,
            pid=lease.pid,
            token=lease.token,
            acquired_at=lease.acquired_at,
            renewed_at=now,
            expires_at=now + self.ttl_s,
        )
        path = self._path(lease.shard_id)
        tmp = f"{path}.renew.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(asdict(renewed), handle)
            handle.write("\n")
        os.replace(tmp, path)
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop our claim (no-op if it was already stolen)."""
        current = self.read(lease.shard_id)
        if current is not None and current.token == lease.token:
            try:
                os.unlink(self._path(lease.shard_id))
            except FileNotFoundError:
                pass

    def sweep(self) -> int:
        """Supervisor-side reclaim: steal every expired/dead lease so a
        restarted worker finds the shards free immediately.  Returns how
        many leases were reclaimed by this sweep."""
        reclaimed = 0
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in names:
            if not name.endswith(".lease"):
                continue
            try:
                shard_id = int(name[len("shard_"): -len(".lease")])
            except ValueError:
                continue
            current = self.read(shard_id)
            if current is None or not self.holder_dead(current):
                continue
            tombstone = (
                f"{self._path(shard_id)}.swept.{os.getpid()}."
                f"{os.urandom(4).hex()}"
            )
            try:
                os.rename(self._path(shard_id), tombstone)
            except FileNotFoundError:
                continue
            try:
                os.unlink(tombstone)
            except FileNotFoundError:
                pass
            reclaimed += 1
        self.reclaimed += reclaimed
        return reclaimed
