"""One shard worker process: claim, complete, journal, heartbeat, die.

A worker is spawned as ``python -m repro shard-worker --run-dir DIR
--worker-id wN`` (so it is a real OS process the chaos harness can
SIGKILL) and self-schedules: it rebuilds the workload deterministically
from ``plan.json``, scans the shards in order, leases the first
incomplete unleased one, and works it in micro-batches:

    complete (executor fan-out) -> append call log -> append journal
    -> [chaos boundary] -> renew lease / orphan check

Every durability-relevant append lands *before* the next boundary, and
process-level chaos (:class:`repro.api.faults.ProcessChaos`) only ever
kills *at* a boundary — which is why the drill's "zero duplicate
backend calls" assertion is exact, not probabilistic.  An external
SIGKILL at an arbitrary instant still resumes to byte-identical
predictions (journaled work is never redone); at worst the calls that
landed in the kill window are re-made, and the call log makes even that
visible.

The call log (``calls/<worker>-<pid>.calls``, one prompt digest per
*successful* backend completion) is the cross-process audit trail the
merge uses to prove the exactly-once invariant: a digest appearing
twice anywhere in ``calls/`` is a duplicate backend call.

Orphan watch: each boundary compares ``os.getppid()`` with the
supervisor pid recorded at spawn.  If the supervisor was SIGKILLed the
worker releases its lease and exits cleanly at the next boundary, so
``--resume`` finds a quiet run directory instead of racing zombies.
"""

from __future__ import annotations

import os
import threading
import time

from repro.api.faults import FaultPlan, ProcessChaos, get_fault_profile
from repro.core.checkpoint import RunCheckpoint, prompt_sha
from repro.shard.lease import LeaseBoard, LeaseLostError
from repro.shard.plan import ShardPlan

__all__ = ["WorkerContext", "run_worker"]

#: Run-directory layout (shared with supervisor/merge).
PLAN_FILE = "plan.json"
JOURNAL_DIR = "journals"
LEASE_DIR = "leases"
CALL_DIR = "calls"
CHAOS_DIR = "chaos"


def journal_path(run_dir: str, shard_id: int) -> str:
    return os.path.join(run_dir, JOURNAL_DIR, f"shard_{shard_id:04d}.jsonl")


class CallLog:
    """Append-only per-process log of successful backend completions."""

    def __init__(self, path: str):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def record(self, prompt: str) -> None:
        with self._lock:
            self._handle.write(prompt_sha(prompt) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class _LoggedBackend:
    """Backend wrapper that records every *successful* completion.

    Sits under the :class:`~repro.api.client.CompletionClient`, so
    injected transient faults and their retries (which never reach the
    backend) don't pollute the audit trail.
    """

    def __init__(self, backend, call_log: CallLog):
        self._backend = backend
        self._call_log = call_log

    def complete(self, prompt: str, *args, **kwargs) -> str:
        text = self._backend.complete(prompt, *args, **kwargs)
        self._call_log.record(prompt)
        return text

    def __getattr__(self, name):
        return getattr(self._backend, name)


class WorkerContext:
    """The deterministically-rebuilt workload of one worker process."""

    def __init__(
        self,
        run_dir: str,
        worker_id: str,
        *,
        executor_kind: str = "thread",
        intra_workers: int = 1,
        lease_ttl_s: float = 10.0,
        chaos_profile: str | None = None,
        chaos_seed: int = 0,
        supervisor_pid: int | None = None,
    ):
        from repro.api.backends import get_backend
        from repro.api.client import CompletionClient
        from repro.shard.merge import resolve_workload

        self.run_dir = os.fspath(run_dir)
        self.worker_id = worker_id
        self.executor_kind = executor_kind
        self.intra_workers = max(1, int(intra_workers))
        self.supervisor_pid = supervisor_pid
        self.plan = ShardPlan.load(os.path.join(self.run_dir, PLAN_FILE))
        plan = self.plan
        self.workload = resolve_workload(plan)

        self.call_log = CallLog(
            os.path.join(
                self.run_dir, CALL_DIR, f"{worker_id}-{os.getpid()}.calls"
            )
        )
        fault_plan = None
        self.chaos = None
        if chaos_profile is not None and chaos_profile != "none":
            profile = get_fault_profile(chaos_profile)
            fault_plan = FaultPlan(profile, seed=chaos_seed)
            self.chaos = ProcessChaos(
                profile,
                seed=chaos_seed,
                marker_dir=os.path.join(self.run_dir, CHAOS_DIR),
            )
        self.client = CompletionClient(
            _LoggedBackend(get_backend(plan.model), self.call_log),
            cache=None,
            fault_plan=fault_plan,
        )
        self.board = LeaseBoard(
            os.path.join(self.run_dir, LEASE_DIR), ttl_s=lease_ttl_s
        )

    # -- workload ----------------------------------------------------------

    def prompt_for(self, index: int) -> str:
        return self.workload.prompt_for(index, self.plan)

    def orphaned(self) -> bool:
        """Did our supervisor die?  (Re-parented == orphaned.)"""
        return (
            self.supervisor_pid is not None
            and os.getppid() != self.supervisor_pid
        )

    def shard_done(self, shard_id: int) -> bool:
        from repro.shard.merge import read_journal

        shard = self.plan.shards[shard_id]
        completed, quarantined = read_journal(
            journal_path(self.run_dir, shard_id),
            self.plan.shard_fingerprint(shard_id),
        )
        done = set(completed) | set(quarantined)
        return all(index in done for index in shard.indices)

    # -- the work loop -----------------------------------------------------

    def work_shard(self, shard_id: int, lease) -> None:
        """Complete every pending example of one leased shard."""
        from repro.api.batch import BatchFailure, make_executor

        plan = self.plan
        shard = plan.shards[shard_id]
        journal = RunCheckpoint(
            journal_path(self.run_dir, shard_id),
            plan.shard_fingerprint(shard_id),
            meta={
                "shard_id": shard_id,
                "start": shard.start,
                "stop": shard.stop,
                "plan": plan.fingerprint,
            },
            fsync=True,
        )
        try:
            pending = [
                index
                for index in shard.indices
                if index not in journal.quarantined
                and journal.response_for(index, self.prompt_for(index)) is None
            ]
            done = shard.n_examples - len(pending)
            executor = make_executor(
                self.executor_kind, workers=self.intra_workers
            )
            chunk_size = max(1, self.intra_workers)
            renew_at = time.monotonic() + self.board.ttl_s / 3.0
            for offset in range(0, len(pending), chunk_size):
                chunk = pending[offset: offset + chunk_size]
                outcomes = executor.map(
                    lambda index: self.client.complete(self.prompt_for(index)),
                    chunk,
                    on_error="return",
                )
                for index, outcome in zip(chunk, outcomes):
                    if isinstance(outcome, BatchFailure):
                        journal.record_quarantine(
                            index,
                            outcome.error_type,
                            str(outcome.error),
                            outcome.attempts,
                        )
                    else:
                        journal.record_example(
                            index, self.prompt_for(index), outcome
                        )
                    done += 1
                    # Chaos boundary: the journal append for this example
                    # is durable, so a kill here cannot cause a duplicate
                    # call on resume.  Keyed by (shard, progress), not by
                    # worker, so the schedule survives work stealing.
                    if self.chaos is not None and self.chaos.should_kill(
                        shard_id, done
                    ):
                        journal.close()
                        self.chaos.mark_and_kill(shard_id, done)
                        return  # only reached if another process won the marker race
                if self.orphaned():
                    return
                if time.monotonic() >= renew_at:
                    lease = self.board.renew(lease)
                    renew_at = time.monotonic() + self.board.ttl_s / 3.0
        finally:
            journal.close()

    def run(self) -> int:
        """Claim-work-release until every shard is done.  Returns 0."""
        plan = self.plan
        idle_since = None
        while True:
            if self.orphaned():
                return 0
            claimed = False
            remaining = False
            for shard in plan.shards:
                if self.shard_done(shard.shard_id):
                    continue
                remaining = True
                lease = self.board.try_acquire(shard.shard_id, self.worker_id)
                if lease is None:
                    continue
                claimed = True
                idle_since = None
                try:
                    self.work_shard(shard.shard_id, lease)
                except LeaseLostError:
                    # Presumed dead and replaced; our journal appends
                    # stand, the new owner skips them.
                    continue
                finally:
                    self.board.release(lease)
            if not remaining:
                return 0
            if not claimed:
                # Everything pending is leased to live workers; nap and
                # rescan (a dying worker's lease frees up for stealing).
                if idle_since is None:
                    idle_since = time.monotonic()
                elif time.monotonic() - idle_since > 10 * self.board.ttl_s:
                    return 0  # pathological stall; let the supervisor act
                time.sleep(0.02)

    def close(self) -> None:
        self.call_log.close()


def run_worker(
    run_dir,
    worker_id: str,
    *,
    executor_kind: str = "thread",
    intra_workers: int = 1,
    lease_ttl_s: float = 10.0,
    chaos_profile: str | None = None,
    chaos_seed: int = 0,
    supervisor_pid: int | None = None,
) -> int:
    """Entry point behind ``repro shard-worker``."""
    context = WorkerContext(
        run_dir,
        worker_id,
        executor_kind=executor_kind,
        intra_workers=intra_workers,
        lease_ttl_s=lease_ttl_s,
        chaos_profile=chaos_profile,
        chaos_seed=chaos_seed,
        supervisor_pid=supervisor_pid,
    )
    try:
        return context.run()
    finally:
        context.close()
