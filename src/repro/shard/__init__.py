"""Crash-safe sharded multi-process runs (``repro shard-run``).

The paper's pipeline is one process evaluating one dataset; production
wrangling is a fleet.  This package splits one task run into N shards
under a deterministic, fingerprinted :class:`~repro.shard.plan.ShardPlan`,
executes them across worker *processes* that journal every completion to
per-shard checkpoint files (:mod:`repro.core.checkpoint`), coordinates
the fleet with a file-based lease + heartbeat protocol
(:mod:`repro.shard.lease`), and merges the journals back into one
schema-valid :class:`~repro.core.manifest.RunManifest`
(:mod:`repro.shard.merge`).

The headline invariant is **exactly-once under violence**: SIGKILL any
worker — or the supervisor itself — mid-run, re-invoke with
``--resume``, and the merged predictions are byte-identical to an
unfaulted single-process :func:`~repro.core.tasks.engine.run_task` with
zero duplicate backend calls.  DESIGN §4e walks the argument.
"""

from repro.shard.lease import Lease, LeaseBoard, LeaseLostError
from repro.shard.merge import IncompleteRunError, MergedRun, merge_run
from repro.shard.plan import ShardPlan, ShardSpec, build_shard_plan
from repro.shard.supervisor import ShardRunIncompleteError, ShardSupervisor
from repro.shard.worker import run_worker

__all__ = [
    "IncompleteRunError",
    "Lease",
    "LeaseBoard",
    "LeaseLostError",
    "MergedRun",
    "ShardPlan",
    "ShardRunIncompleteError",
    "ShardSpec",
    "ShardSupervisor",
    "build_shard_plan",
    "merge_run",
    "run_worker",
]
