"""Deterministic shard plans: one fingerprinted split of one run.

A :class:`ShardPlan` pins *everything* workers need to rebuild the
workload independently — task, dataset (plus scale), model, k,
selection, split, seed, max_examples — and carves the example index
space ``[0, n_examples)`` into N contiguous shards.  The plan is
BLAKE2-fingerprinted with the same canonicalization as checkpoint
fingerprints (:func:`repro.core.checkpoint.run_fingerprint`), saved as
``plan.json`` in the run directory, and verified on every resume:
changing any knob between invocations is a hard error, never a silent
mix of two runs.

Shard journals are namespaced by a per-shard fingerprint derived from
the plan fingerprint plus the shard's identity, so a journal can never
be replayed against the wrong shard (or the wrong run).

Example indices in journals are **global** split indices, which makes
the merge trivial and makes "byte-identical to a single-process run"
checkable by position.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

from repro.core.checkpoint import run_fingerprint

__all__ = [
    "PLAN_VERSION",
    "ShardPlan",
    "ShardPlanMismatchError",
    "ShardSpec",
    "build_shard_plan",
    "partition",
]

PLAN_VERSION = 1


class ShardPlanMismatchError(RuntimeError):
    """plan.json on disk was built from a different resolved run."""


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous block of global example indices ``[start, stop)``."""

    shard_id: int
    start: int
    stop: int

    @property
    def n_examples(self) -> int:
        return self.stop - self.start

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)


@dataclass(frozen=True)
class ShardPlan:
    """The resolved, fingerprinted description of one sharded run."""

    task: str
    dataset: str
    model: str
    k: int
    selection: str
    split: str
    seed: int
    max_examples: int | None
    scale: int | None
    n_examples: int
    n_shards: int
    shards: tuple[ShardSpec, ...] = field(default_factory=tuple)
    version: int = PLAN_VERSION

    # -- identity ----------------------------------------------------------

    def fingerprint_payload(self) -> dict:
        # Deliberately excludes chaos knobs: a chaotic run must be
        # resumable with chaos off (the CI drill does exactly that), and
        # shard-run restricts chaos to response-preserving profiles so
        # journaled responses are valid either way.
        return {
            "version": self.version,
            "task": self.task,
            "dataset": self.dataset,
            "model": self.model,
            "k": self.k,
            "selection": self.selection,
            "split": self.split,
            "seed": self.seed,
            "max_examples": self.max_examples,
            "scale": self.scale,
            "n_examples": self.n_examples,
            "n_shards": self.n_shards,
        }

    @property
    def fingerprint(self) -> str:
        return run_fingerprint(self.fingerprint_payload())

    def shard_fingerprint(self, shard_id: int) -> str:
        shard = self.shards[shard_id]
        return run_fingerprint(
            {
                "plan": self.fingerprint,
                "shard_id": shard.shard_id,
                "start": shard.start,
                "stop": shard.stop,
            }
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["shards"] = [asdict(shard) for shard in self.shards]
        payload["fingerprint"] = self.fingerprint
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> ShardPlan:
        shards = tuple(
            ShardSpec(**shard) for shard in payload.get("shards", ())
        )
        plan = cls(
            task=payload["task"],
            dataset=payload["dataset"],
            model=payload["model"],
            k=payload["k"],
            selection=payload["selection"],
            split=payload["split"],
            seed=payload["seed"],
            max_examples=payload["max_examples"],
            scale=payload["scale"],
            n_examples=payload["n_examples"],
            n_shards=payload["n_shards"],
            shards=shards,
            version=payload.get("version", PLAN_VERSION),
        )
        recorded = payload.get("fingerprint")
        if recorded is not None and recorded != plan.fingerprint:
            raise ShardPlanMismatchError(
                f"plan fingerprint mismatch: recorded {recorded!r}, "
                f"recomputed {plan.fingerprint!r} — plan.json is corrupt "
                f"or was edited"
            )
        return plan

    def save(self, path) -> None:
        """Atomic write (temp + rename): a crashed save never leaves a
        torn plan.json for the next resume to trip over."""
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> ShardPlan:
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def require_same(self, other: ShardPlan) -> None:
        """Resume safety: refuse to mix two resolved runs in one dir."""
        if self.fingerprint != other.fingerprint:
            raise ShardPlanMismatchError(
                "the run directory holds a plan for a different resolved "
                "run configuration "
                f"(on disk {other.fingerprint_payload()!r}, requested "
                f"{self.fingerprint_payload()!r}); use a fresh --run-dir "
                "or matching flags"
            )


def partition(n_examples: int, n_shards: int) -> tuple[ShardSpec, ...]:
    """Near-equal contiguous blocks; the first ``n % k`` get one extra."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, max(1, n_examples))
    base, extra = divmod(n_examples, n_shards)
    shards = []
    start = 0
    for shard_id in range(n_shards):
        size = base + (1 if shard_id < extra else 0)
        shards.append(
            ShardSpec(shard_id=shard_id, start=start, stop=start + size)
        )
        start += size
    return tuple(shards)


def build_shard_plan(
    task: str,
    dataset_name: str,
    *,
    model: str,
    n_shards: int,
    k: int = 0,
    selection: str = "random",
    split: str = "test",
    seed: int = 0,
    max_examples: int | None = None,
    scale: int | None = None,
) -> ShardPlan:
    """Resolve the dataset, count the split, and carve the shards."""
    from repro.core.tasks.common import subsample
    from repro.core.tasks.spec import get_task
    from repro.datasets import load_dataset

    spec = get_task(task)
    dataset = load_dataset(dataset_name, scale=scale)
    examples = subsample(spec.examples_of(dataset, split), max_examples)
    n_examples = len(examples)
    if n_examples == 0:
        raise ValueError(
            f"{dataset_name}:{split} has no examples to shard"
        )
    return ShardPlan(
        task=spec.name,
        dataset=dataset_name,
        model=model,
        k=k,
        selection=selection,
        split=split,
        seed=seed,
        max_examples=max_examples,
        scale=scale,
        n_examples=n_examples,
        n_shards=len(partition(n_examples, n_shards)),
        shards=partition(n_examples, n_shards),
    )
