"""The paper's contribution: data tasks as prompting tasks.

This package turns structured data-wrangling inputs into natural-language
prompts (Section 3 of the paper), selects task demonstrations (random or
manually curated), runs them through a foundation model, and scores the
generated answers:

* :mod:`repro.core.serialization` — ``attr: val`` row serialization with
  attribute sub-selection (Section 3.1),
* :mod:`repro.core.prompts` — the task prompt templates (Section 3.2),
* :mod:`repro.core.demonstrations` — demonstration selection (Section 3.3),
* :mod:`repro.core.tasks` — one runner per task,
* :mod:`repro.core.metrics` — F1 / accuracy,
* :mod:`repro.core.pipeline` — the high-level :class:`Wrangler` API.
"""

from repro.core.blocking import (
    BlockingReport,
    CandidatePair,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    evaluate_blocking,
)
from repro.core.serialization import SerializationConfig, serialize_row
from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    ImputationPromptConfig,
    SchemaMatchingPromptConfig,
    TransformationPromptConfig,
)
from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.metrics import (
    BinaryMetrics,
    accuracy,
    binary_metrics,
    normalize_answer,
)
from repro.core.analysis import (
    ErrorBreakdown,
    analyze_error_detection,
    analyze_imputation,
    analyze_matching,
)
from repro.core.ensemble import PromptEnsemble
from repro.core.manifest import RunManifest, validate_manifest
from repro.core.pipeline import Wrangler
from repro.core.prototype import LabelingReport, ModelPrototyper

__all__ = [
    "BinaryMetrics",
    "BlockingReport",
    "CandidatePair",
    "SortedNeighborhoodBlocker",
    "TokenBlocker",
    "evaluate_blocking",
    "DemonstrationSelector",
    "EntityMatchingPromptConfig",
    "ErrorBreakdown",
    "analyze_error_detection",
    "analyze_imputation",
    "analyze_matching",
    "ErrorDetectionPromptConfig",
    "ImputationPromptConfig",
    "LabelingReport",
    "ManualCurator",
    "ModelPrototyper",
    "PromptEnsemble",
    "RandomSelector",
    "SchemaMatchingPromptConfig",
    "SerializationConfig",
    "TransformationPromptConfig",
    "RunManifest",
    "Wrangler",
    "validate_manifest",
    "accuracy",
    "binary_metrics",
    "normalize_answer",
    "serialize_row",
]
