"""Prompt ensembling: majority voting over reworded prompts (Section 5.3).

The paper's privacy discussion cites Ask-Me-Anything-style results:
"prompt ensembling and prompt reframing can enable open-source models …
to out-perform GPT3-175B" — the motivation being organizations that
cannot ship data to a closed API and must squeeze a smaller local model.

:class:`PromptEnsemble` wraps any completion model.  For Yes/No prompts it
rewrites the question line into each configured phrasing, collects the
votes, and answers with the majority — averaging away the per-phrasing
brittleness that Table 4 measures.  Non-binary prompts pass through
unchanged.
"""

from __future__ import annotations

from collections import Counter

from repro.fm.parsing import MatchExample, parse_prompt

#: Default rewordings for entity-style Yes/No questions.  ``{question}``
#: placeholders are not used — each variant is a complete question line
#: with ``A`` and ``B`` referring to the serialized entities.
DEFAULT_VARIANTS: tuple[str, ...] = (
    "Are {noun} A and {noun} B the same?",
    "Are {noun} A and {noun} B equivalent?",
    "Do {noun} A and {noun} B refer to the same entity?",
    "Is {noun} A identical to {noun} B?",
    "Are {noun} A and {noun} B duplicates?",
)


class PromptEnsemble:
    """Majority vote over question rewordings of Yes/No prompts."""

    def __init__(self, model, variants: tuple[str, ...] = DEFAULT_VARIANTS):
        if not hasattr(model, "complete"):
            raise TypeError("model must expose complete(prompt) -> str")
        if len(variants) < 2:
            raise ValueError("an ensemble needs at least two variants")
        self.model = model
        self.variants = tuple(variants)

    @property
    def name(self) -> str:
        base = getattr(self.model, "name", type(self.model).__name__)
        return f"{base}-ensemble{len(self.variants)}"

    def _reworded(self, prompt: str, question: str, noun: str) -> list[str]:
        """The prompt under each variant phrasing (demos rewritten too)."""
        prompts = []
        for variant in self.variants:
            new_question = variant.format(noun=noun)
            prompts.append(prompt.replace(question, new_question))
        return prompts

    def complete(self, prompt: str, **kwargs) -> str:
        parsed = parse_prompt(prompt)
        if parsed.task not in ("match", "schema") or not isinstance(
            parsed.query, MatchExample
        ):
            return self.model.complete(prompt, **kwargs)
        question = parsed.query.question
        noun = parsed.query.noun
        votes = Counter()
        for variant_prompt in self._reworded(prompt, question, noun):
            answer = self.model.complete(variant_prompt, **kwargs)
            text = answer.strip().casefold()
            if text.startswith("yes"):
                votes["Yes"] += 1
            elif text.startswith("no"):
                votes["No"] += 1
            # Free-text answers abstain from the vote.
        if not votes:
            return self.model.complete(prompt, **kwargs)
        best, count = votes.most_common(1)[0]
        # Break exact ties toward the original phrasing's answer.
        ranked = votes.most_common(2)
        if len(ranked) == 2 and ranked[0][1] == ranked[1][1]:
            return self.model.complete(prompt, **kwargs)
        return best
