"""Model prototyping: FM-labeled training data (paper Section 5.1).

The paper proposes that FMs shine in the *discovery and design* phase:
"we can use the FM to label and generate data … when a sufficient amount
of data has been collected, transitioning to the fully-supervised model
development regime is the optimal choice."

:class:`ModelPrototyper` implements that loop for entity matching: the
prompted FM labels an unlabeled pair pool (optionally keeping only its
high-confidence labels), and a supervised matcher is trained on those
machine labels — distillation from the prompt-programmed teacher into a
cheap deployable student.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    build_entity_matching_prompt,
)
from repro.core.tasks.common import parse_yes_no
from repro.datasets.base import MatchingPair


@dataclass
class LabelingReport:
    """What the teacher produced."""

    n_pool: int
    n_labeled: int
    n_positive: int
    agreement_with_gold: float | None = None


class ModelPrototyper:
    """Label pairs with a prompted FM; train a student on the labels."""

    def __init__(
        self,
        model,
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
        min_confidence: float = 0.0,
    ):
        if not hasattr(model, "complete"):
            raise TypeError("model must expose complete(prompt) -> str")
        self.model = model
        self.demonstrations = demonstrations or []
        self.config = config or EntityMatchingPromptConfig()
        self.min_confidence = min_confidence
        self.report: LabelingReport | None = None

    def _label_one(self, pair: MatchingPair) -> tuple[bool, float]:
        prompt = build_entity_matching_prompt(pair, self.demonstrations, self.config)
        if self.min_confidence > 0 and hasattr(self.model, "complete_verbose"):
            completion = self.model.complete_verbose(prompt)
            return parse_yes_no(completion.text), completion.confidence
        return parse_yes_no(self.model.complete(prompt)), 1.0

    def label(self, pool: Sequence[MatchingPair]) -> list[MatchingPair]:
        """Relabel ``pool`` with the FM's verdicts.

        Pairs below ``min_confidence`` are dropped (abstention): a human
        prototyper keeps only the labels the model is sure about.  Gold
        labels on the incoming pairs, if any, are used solely to report
        teacher agreement.
        """
        labeled: list[MatchingPair] = []
        agreements = 0
        for pair in pool:
            verdict, confidence = self._label_one(pair)
            if confidence < self.min_confidence:
                continue
            labeled.append(
                MatchingPair(left=pair.left, right=pair.right, label=verdict)
            )
            if verdict == pair.label:
                agreements += 1
        self.report = LabelingReport(
            n_pool=len(pool),
            n_labeled=len(labeled),
            n_positive=sum(pair.label for pair in labeled),
            agreement_with_gold=agreements / len(labeled) if labeled else None,
        )
        return labeled

    def distill(
        self,
        pool: Sequence[MatchingPair],
        student_factory: Callable[[], object],
    ):
        """Label ``pool`` and fit ``student_factory()`` on the machine labels.

        Returns the fitted student.  Raises if the teacher produced a
        single-class labeling (nothing learnable).
        """
        labeled = self.label(pool)
        labels = {pair.label for pair in labeled}
        if len(labels) < 2:
            raise ValueError(
                "teacher produced a single-class labeling; widen the pool"
            )
        student = student_factory()
        student.fit(labeled)
        return student
