"""Task-demonstration selection (paper Section 3.3).

Two strategies, matching the paper's comparison:

* :class:`RandomSelector` — uniform sampling from the labeled pool.  The
  paper runs this over three seeds and reports mean ± std (Table 4's
  "w/o Example Select." rows).
* :class:`ManualCurator` — the programmatic analogue of the paper's manual
  prompt tuning ("at most one hour analyzing errors on a held-out
  validation set").  It greedily grows the demonstration set, at each step
  adding the candidate that most improves a validation score supplied by
  the caller — exactly the error-driven iteration a human performs, with
  the time budget surfaced as a candidate-pool cap.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence


class DemonstrationSelector:
    """Interface: pick ``k`` demonstrations from a labeled pool."""

    def select(self, pool: Sequence, k: int) -> list:
        raise NotImplementedError


class RandomSelector(DemonstrationSelector):
    """Uniform random demonstrations (optionally class-balanced)."""

    def __init__(self, seed: int = 0, balanced: bool = False,
                 label_of: Callable[[object], bool] | None = None):
        self.seed = seed
        self.balanced = balanced
        self.label_of = label_of

    def select(self, pool: Sequence, k: int) -> list:
        if k <= 0:
            return []
        rng = random.Random(self.seed)
        items = list(pool)
        if not items:
            return []
        if self.balanced and self.label_of is not None:
            positives = [item for item in items if self.label_of(item)]
            negatives = [item for item in items if not self.label_of(item)]
            rng.shuffle(positives)
            rng.shuffle(negatives)
            half = k // 2
            chosen = positives[:half] + negatives[: k - half]
            if len(chosen) < k:
                leftovers = positives[half:] + negatives[k - half :]
                rng.shuffle(leftovers)
                chosen += leftovers[: k - len(chosen)]
            rng.shuffle(chosen)
            return chosen
        rng.shuffle(items)
        return items[:k]


class ManualCurator(DemonstrationSelector):
    """Greedy validation-guided curation.

    ``evaluate`` receives a candidate demonstration list and returns a
    validation score (higher is better); the runner wires it to an actual
    model evaluation on a validation sample.  ``pool_cap`` bounds how many
    candidates a "human hour" can examine.
    """

    def __init__(
        self,
        evaluate: Callable[[list], float],
        pool_cap: int = 24,
        seed: int = 0,
        label_of: Callable[[object], bool] | None = None,
    ):
        self.evaluate = evaluate
        self.pool_cap = pool_cap
        self.seed = seed
        self.label_of = label_of
        self.trace: list[tuple[int, float]] = []

    def _candidate_pool(self, pool: Sequence) -> list:
        """A label-balanced, size-capped working set of candidates."""
        rng = random.Random(self.seed)
        items = list(pool)
        rng.shuffle(items)
        if self.label_of is None:
            return items[: self.pool_cap]
        positives = [item for item in items if self.label_of(item)]
        negatives = [item for item in items if not self.label_of(item)]
        half = self.pool_cap // 2
        return positives[:half] + negatives[: self.pool_cap - half]

    def _step_candidates(self, candidates: list, chosen: list) -> list:
        """Candidates that keep the demonstration set class-balanced.

        Curated prompts show the model both kinds of answer; a human never
        stacks nine "Yes" examples against one "No".
        """
        if self.label_of is None:
            return candidates
        n_positive = sum(1 for item in chosen if self.label_of(item))
        n_negative = len(chosen) - n_positive
        if n_positive > n_negative:
            preferred = [c for c in candidates if not self.label_of(c)]
        elif n_negative > n_positive:
            preferred = [c for c in candidates if self.label_of(c)]
        else:
            return candidates
        return preferred or candidates

    def select(self, pool: Sequence, k: int) -> list:
        if k <= 0:
            return []
        candidates = self._candidate_pool(pool)
        chosen: list = []
        best_score = self.evaluate(chosen)
        self.trace = [(0, best_score)]
        while len(chosen) < k and candidates:
            step_best = None
            step_score = -1.0
            for candidate in self._step_candidates(candidates, chosen):
                score = self.evaluate(chosen + [candidate])
                if score > step_score:
                    step_score = score
                    step_best = candidate
            if step_best is None:
                break
            chosen.append(step_best)
            candidates.remove(step_best)
            best_score = max(best_score, step_score)
            self.trace.append((len(chosen), best_score))
        return chosen
