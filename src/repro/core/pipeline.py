"""The high-level ``Wrangler`` API.

One object, five verbs — the "single foundation model, many data tasks"
interface the paper argues for:

>>> from repro.core import Wrangler
>>> wrangler = Wrangler(model="gpt3-175b")              # doctest: +SKIP
>>> wrangler.match(row_a, row_b)                        # doctest: +SKIP
True
>>> wrangler.impute({"name": "...", "phone": "415-..."}, "city")  # doctest: +SKIP
'san francisco'

Every verb is a thin delegation to the spec-driven :meth:`Wrangler.run` /
:meth:`Wrangler.run_many` core: the verb wraps its raw inputs in the
task's typed example and the registered
:class:`~repro.core.tasks.spec.TaskSpec` supplies the prompt builder,
response parser and default configuration.  A task added to the registry
is immediately reachable through ``run``/``run_many`` without touching
this file.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    ImputationPromptConfig,
    SchemaMatchingPromptConfig,
    TransformationPromptConfig,
    build_imputation_prompt,
)
from repro.core.tasks.spec import TaskSpec, get_task
from repro.core.tasks.transformation import TransformQuery
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.datasets.table import Row
from repro.knowledge.medical import SchemaAttribute


class Wrangler:
    """Prompt-driven data wrangling over one foundation model.

    ``model`` may be a registered backend name ("gpt3-175b", see
    ``repro backends``), a :class:`~repro.fm.SimulatedFoundationModel`,
    or any object with a ``complete(prompt) -> str`` method (e.g. an
    API client).

    Demonstrations are optional everywhere; provide them to move from
    zero-shot to few-shot prompting.
    """

    def __init__(self, model="gpt3-175b"):
        if isinstance(model, str):
            from repro.api.backends import get_backend

            model = get_backend(model)
        if not hasattr(model, "complete"):
            raise TypeError("model must expose complete(prompt) -> str")
        self.model = model

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", type(self.model).__name__)

    def _complete_many(
        self, prompts: list[str], workers: int | None = None
    ) -> list[str]:
        """Order-preserving batch completion behind every ``*_many`` verb."""
        from repro.api.batch import complete_all

        return complete_all(self.model, prompts, workers=workers)

    # -- spec-driven core -----------------------------------------------------

    def run(
        self,
        task: str | TaskSpec,
        example,
        demonstrations: list | None = None,
        config=None,
    ):
        """One prediction for one typed example of any registered task."""
        return self.run_many(task, [example], demonstrations, config)[0]

    def run_many(
        self,
        task: str | TaskSpec,
        examples: Sequence,
        demonstrations: list | None = None,
        config=None,
        workers: int | None = None,
    ) -> list:
        """Batch predictions for typed examples of any registered task.

        The task's spec builds one prompt per example (ad-hoc default
        config when none is given), the batch layer fans the prompts out,
        and the spec's parser interprets each completion.
        """
        spec = get_task(task)
        if config is None:
            config = spec.default_config(None)
        demonstrations = demonstrations or []
        prompts = [
            spec.build_prompt(example, demonstrations, config, len(demonstrations))
            for example in examples
        ]
        responses = self._complete_many(prompts, workers=workers)
        return [spec.parse_response(response) for response in responses]

    # -- entity matching ------------------------------------------------------

    def match(
        self,
        left: Row,
        right: Row,
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
    ) -> bool:
        """Do ``left`` and ``right`` refer to the same real-world entity?"""
        pair = MatchingPair(left=left, right=right, label=False)
        return self.run("entity_matching", pair, demonstrations, config)

    def match_many(
        self,
        pairs: Sequence[tuple[Row, Row]],
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[bool]:
        """Batch :meth:`match` over ``(left, right)`` row pairs."""
        examples = [
            MatchingPair(left=left, right=right, label=False)
            for left, right in pairs
        ]
        return self.run_many(
            "entity_matching", examples, demonstrations, config, workers
        )

    # -- error detection --------------------------------------------------------

    def detect_error(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ErrorExample] | None = None,
        config: ErrorDetectionPromptConfig | None = None,
    ) -> bool:
        """Is the value of ``attribute`` in ``row`` erroneous?"""
        example = ErrorExample(row=row, attribute=attribute, label=False)
        return self.run("error_detection", example, demonstrations, config)

    def detect_errors(
        self,
        row: Row,
        demonstrations: list[ErrorExample] | None = None,
    ) -> dict[str, bool]:
        """Per-attribute error verdicts for a whole row."""
        return self.detect_errors_many([row], demonstrations)[0]

    def detect_errors_many(
        self,
        rows: Sequence[Row],
        demonstrations: list[ErrorExample] | None = None,
        config: ErrorDetectionPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[dict[str, bool]]:
        """Batch :meth:`detect_errors`: one cell-level fan-out for all rows.

        All (row, attribute) cells go through a single batch, so the
        thread pool is shared across rows rather than per row.
        """
        cells = [
            (row_index, attribute)
            for row_index, row in enumerate(rows)
            for attribute, value in row.items()
            if value is not None
        ]
        examples = [
            ErrorExample(row=rows[row_index], attribute=attribute, label=False)
            for row_index, attribute in cells
        ]
        verdict_list = self.run_many(
            "error_detection", examples, demonstrations, config, workers
        )
        verdicts: list[dict[str, bool]] = [{} for _ in rows]
        for (row_index, attribute), verdict in zip(cells, verdict_list):
            verdicts[row_index][attribute] = verdict
        return verdicts

    # -- imputation ----------------------------------------------------------------

    def impute(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
        config: ImputationPromptConfig | None = None,
    ) -> str:
        """Fill the missing value of ``attribute`` in ``row``."""
        return self.impute_many([(row, attribute)], demonstrations, config)[0]

    def impute_many(
        self,
        items: Sequence[tuple[Row, str]],
        demonstrations: list[ImputationExample] | None = None,
        config: ImputationPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Batch :meth:`impute` over ``(row, attribute)`` items."""
        examples = [
            ImputationExample(
                row={**row, attribute: None}, attribute=attribute, answer=""
            )
            for row, attribute in items
        ]
        return self.run_many("imputation", examples, demonstrations, config, workers)

    # -- schema matching ---------------------------------------------------------------

    def match_schema(
        self,
        left: SchemaAttribute,
        right: SchemaAttribute,
        demonstrations: list[SchemaPair] | None = None,
        config: SchemaMatchingPromptConfig | None = None,
    ) -> bool:
        """Do two schema attributes describe the same concept?"""
        pair = SchemaPair(left=left, right=right, label=False)
        return self.run("schema_matching", pair, demonstrations, config)

    def match_schema_many(
        self,
        pairs: Sequence[tuple[SchemaAttribute, SchemaAttribute]],
        demonstrations: list[SchemaPair] | None = None,
        config: SchemaMatchingPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[bool]:
        """Batch :meth:`match_schema` over ``(left, right)`` attribute pairs."""
        examples = [
            SchemaPair(left=left, right=right, label=False)
            for left, right in pairs
        ]
        return self.run_many(
            "schema_matching", examples, demonstrations, config, workers
        )

    # -- repair ------------------------------------------------------------------------

    @staticmethod
    def _repair_example(row: Row, attribute: str) -> ImputationExample:
        """The "corrected <attribute>" imputation example behind repairs.

        The row is serialized *with* the dirty value and the model is
        asked for the ``corrected <attribute>`` — so it can either repair
        the typo in place (character-level reasoning, large models only)
        or re-derive the value from the rest of the row (functional
        dependencies), whichever its routes support.
        """
        return ImputationExample(
            row={**row, f"corrected {attribute}": None},
            attribute=f"corrected {attribute}",
            answer="",
        )

    def repair_cell(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
    ) -> str:
        """Propose a corrected value for a (suspected dirty) cell."""
        example = self._repair_example(row, attribute)
        prompt = build_imputation_prompt(example, demonstrations or [])
        return self.model.complete(prompt).strip()

    def repair_row(
        self,
        row: Row,
        error_demonstrations: list[ErrorExample] | None = None,
        repair_demonstrations: list[ImputationExample] | None = None,
        workers: int | None = None,
    ) -> Row:
        """Detect-and-repair every attribute of ``row``.

        Cells the model flags as erroneous are replaced by its proposed
        corrections; everything else passes through untouched.
        """
        return self.repair_rows_many(
            [row], error_demonstrations, repair_demonstrations, workers
        )[0]

    def repair_rows_many(
        self,
        rows: Sequence[Row],
        error_demonstrations: list[ErrorExample] | None = None,
        repair_demonstrations: list[ImputationExample] | None = None,
        workers: int | None = None,
    ) -> list[Row]:
        """Batch detect-and-repair: two fan-outs for any number of rows.

        One cell-level detection batch across all rows, then one repair
        batch over every flagged cell — rather than a serial
        :meth:`repair_cell` loop per row.
        """
        verdicts = self.detect_errors_many(
            rows, error_demonstrations, workers=workers
        )
        flagged = [
            (row_index, attribute)
            for row_index, row_verdicts in enumerate(verdicts)
            for attribute, is_error in row_verdicts.items()
            if is_error
        ]
        prompts = [
            build_imputation_prompt(
                self._repair_example(rows[row_index], attribute),
                repair_demonstrations or [],
            )
            for row_index, attribute in flagged
        ]
        responses = self._complete_many(prompts, workers=workers)
        repaired = [dict(row) for row in rows]
        for (row_index, attribute), response in zip(flagged, responses):
            repaired[row_index][attribute] = response.strip()
        return repaired

    # -- transformation ----------------------------------------------------------------

    @staticmethod
    def _transform_query(value: str) -> TransformQuery:
        return TransformQuery(
            source=value, target="", examples=(), instruction="",
            case_name="adhoc",
        )

    def transform(
        self,
        value: str,
        examples: list[tuple[str, str]] | None = None,
        instruction: str | None = None,
    ) -> str:
        """Transform ``value`` by example (few-shot) or instruction (zero-shot)."""
        return self.transform_many([value], examples, instruction)[0]

    def transform_many(
        self,
        values: Sequence[str],
        examples: list[tuple[str, str]] | None = None,
        instruction: str | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Batch :meth:`transform` over many values with shared examples."""
        config = TransformationPromptConfig(instruction=instruction)
        queries = [self._transform_query(value) for value in values]
        return self.run_many(
            "transformation", queries, list(examples or []), config, workers
        )
