"""The high-level ``Wrangler`` API.

One object, five verbs — the "single foundation model, many data tasks"
interface the paper argues for:

>>> from repro.core import Wrangler
>>> wrangler = Wrangler(model="gpt3-175b")              # doctest: +SKIP
>>> wrangler.match(row_a, row_b)                        # doctest: +SKIP
True
>>> wrangler.impute({"name": "...", "phone": "415-..."}, "city")  # doctest: +SKIP
'san francisco'
"""

from __future__ import annotations

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    ImputationPromptConfig,
    SchemaMatchingPromptConfig,
    TransformationPromptConfig,
    build_entity_matching_prompt,
    build_error_detection_prompt,
    build_imputation_prompt,
    build_schema_matching_prompt,
    build_transformation_prompt,
)
from repro.core.tasks.common import parse_yes_no
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.datasets.table import Row
from repro.fm.engine import SimulatedFoundationModel
from repro.knowledge.medical import SchemaAttribute


class Wrangler:
    """Prompt-driven data wrangling over one foundation model.

    ``model`` may be a model name ("gpt3-175b"), a
    :class:`~repro.fm.SimulatedFoundationModel`, or any object with a
    ``complete(prompt) -> str`` method (e.g. an API client).

    Demonstrations are optional everywhere; provide them to move from
    zero-shot to few-shot prompting.
    """

    def __init__(self, model="gpt3-175b"):
        if isinstance(model, str):
            model = SimulatedFoundationModel(model)
        if not hasattr(model, "complete"):
            raise TypeError("model must expose complete(prompt) -> str")
        self.model = model

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", type(self.model).__name__)

    # -- entity matching ------------------------------------------------------

    def match(
        self,
        left: Row,
        right: Row,
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
    ) -> bool:
        """Do ``left`` and ``right`` refer to the same real-world entity?"""
        pair = MatchingPair(left=left, right=right, label=False)
        prompt = build_entity_matching_prompt(
            pair, demonstrations or [], config or EntityMatchingPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    # -- error detection --------------------------------------------------------

    def detect_error(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ErrorExample] | None = None,
        config: ErrorDetectionPromptConfig | None = None,
    ) -> bool:
        """Is the value of ``attribute`` in ``row`` erroneous?"""
        example = ErrorExample(row=row, attribute=attribute, label=False)
        prompt = build_error_detection_prompt(
            example, demonstrations or [], config or ErrorDetectionPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    def detect_errors(
        self,
        row: Row,
        demonstrations: list[ErrorExample] | None = None,
    ) -> dict[str, bool]:
        """Per-attribute error verdicts for a whole row."""
        return {
            attribute: self.detect_error(row, attribute, demonstrations)
            for attribute, value in row.items()
            if value is not None
        }

    # -- imputation ----------------------------------------------------------------

    def impute(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
        config: ImputationPromptConfig | None = None,
    ) -> str:
        """Fill the missing value of ``attribute`` in ``row``."""
        example = ImputationExample(
            row={**row, attribute: None}, attribute=attribute, answer=""
        )
        prompt = build_imputation_prompt(
            example, demonstrations or [], config or ImputationPromptConfig()
        )
        return self.model.complete(prompt).strip()

    # -- schema matching ---------------------------------------------------------------

    def match_schema(
        self,
        left: SchemaAttribute,
        right: SchemaAttribute,
        demonstrations: list[SchemaPair] | None = None,
        config: SchemaMatchingPromptConfig | None = None,
    ) -> bool:
        """Do two schema attributes describe the same concept?"""
        pair = SchemaPair(left=left, right=right, label=False)
        prompt = build_schema_matching_prompt(
            pair, demonstrations or [], config or SchemaMatchingPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    # -- repair ------------------------------------------------------------------------

    def repair_cell(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
    ) -> str:
        """Propose a corrected value for a (suspected dirty) cell.

        The row is serialized *with* the dirty value and the model is asked
        for the ``corrected <attribute>`` — so it can either repair the
        typo in place (character-level reasoning, large models only) or
        re-derive the value from the rest of the row (functional
        dependencies), whichever its routes support.
        """
        example = ImputationExample(
            row={**row, f"corrected {attribute}": None},
            attribute=f"corrected {attribute}",
            answer="",
        )
        prompt = build_imputation_prompt(example, demonstrations or [])
        return self.model.complete(prompt).strip()

    def repair_row(
        self,
        row: Row,
        error_demonstrations: list[ErrorExample] | None = None,
    ) -> Row:
        """Detect-and-repair every attribute of ``row``.

        Cells the model flags as erroneous are replaced by its proposed
        corrections; everything else passes through untouched.
        """
        verdicts = self.detect_errors(row, error_demonstrations)
        repaired = dict(row)
        for attribute, is_error in verdicts.items():
            if is_error:
                repaired[attribute] = self.repair_cell(row, attribute)
        return repaired

    # -- transformation ----------------------------------------------------------------

    def transform(
        self,
        value: str,
        examples: list[tuple[str, str]] | None = None,
        instruction: str | None = None,
    ) -> str:
        """Transform ``value`` by example (few-shot) or instruction (zero-shot)."""
        config = TransformationPromptConfig(instruction=instruction)
        prompt = build_transformation_prompt(value, examples or [], config)
        return self.model.complete(prompt).strip()
