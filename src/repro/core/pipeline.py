"""The high-level ``Wrangler`` API.

One object, five verbs — the "single foundation model, many data tasks"
interface the paper argues for:

>>> from repro.core import Wrangler
>>> wrangler = Wrangler(model="gpt3-175b")              # doctest: +SKIP
>>> wrangler.match(row_a, row_b)                        # doctest: +SKIP
True
>>> wrangler.impute({"name": "...", "phone": "415-..."}, "city")  # doctest: +SKIP
'san francisco'
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.prompts import (
    EntityMatchingPromptConfig,
    ErrorDetectionPromptConfig,
    ImputationPromptConfig,
    SchemaMatchingPromptConfig,
    TransformationPromptConfig,
    build_entity_matching_prompt,
    build_error_detection_prompt,
    build_imputation_prompt,
    build_schema_matching_prompt,
    build_transformation_prompt,
)
from repro.core.tasks.common import parse_yes_no
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.datasets.table import Row
from repro.fm.engine import SimulatedFoundationModel
from repro.knowledge.medical import SchemaAttribute


class Wrangler:
    """Prompt-driven data wrangling over one foundation model.

    ``model`` may be a model name ("gpt3-175b"), a
    :class:`~repro.fm.SimulatedFoundationModel`, or any object with a
    ``complete(prompt) -> str`` method (e.g. an API client).

    Demonstrations are optional everywhere; provide them to move from
    zero-shot to few-shot prompting.
    """

    def __init__(self, model="gpt3-175b"):
        if isinstance(model, str):
            model = SimulatedFoundationModel(model)
        if not hasattr(model, "complete"):
            raise TypeError("model must expose complete(prompt) -> str")
        self.model = model

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", type(self.model).__name__)

    def _complete_many(
        self, prompts: list[str], workers: int | None = None
    ) -> list[str]:
        """Order-preserving batch completion behind every ``*_many`` verb."""
        from repro.api.batch import complete_all

        return complete_all(self.model, prompts, workers=workers)

    # -- entity matching ------------------------------------------------------

    def match(
        self,
        left: Row,
        right: Row,
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
    ) -> bool:
        """Do ``left`` and ``right`` refer to the same real-world entity?"""
        pair = MatchingPair(left=left, right=right, label=False)
        prompt = build_entity_matching_prompt(
            pair, demonstrations or [], config or EntityMatchingPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    def match_many(
        self,
        pairs: Sequence[tuple[Row, Row]],
        demonstrations: list[MatchingPair] | None = None,
        config: EntityMatchingPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[bool]:
        """Batch :meth:`match` over ``(left, right)`` row pairs."""
        config = config or EntityMatchingPromptConfig()
        prompts = [
            build_entity_matching_prompt(
                MatchingPair(left=left, right=right, label=False),
                demonstrations or [],
                config,
            )
            for left, right in pairs
        ]
        responses = self._complete_many(prompts, workers=workers)
        return [parse_yes_no(response) for response in responses]

    # -- error detection --------------------------------------------------------

    def detect_error(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ErrorExample] | None = None,
        config: ErrorDetectionPromptConfig | None = None,
    ) -> bool:
        """Is the value of ``attribute`` in ``row`` erroneous?"""
        example = ErrorExample(row=row, attribute=attribute, label=False)
        prompt = build_error_detection_prompt(
            example, demonstrations or [], config or ErrorDetectionPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    def detect_errors(
        self,
        row: Row,
        demonstrations: list[ErrorExample] | None = None,
    ) -> dict[str, bool]:
        """Per-attribute error verdicts for a whole row."""
        return {
            attribute: self.detect_error(row, attribute, demonstrations)
            for attribute, value in row.items()
            if value is not None
        }

    def detect_errors_many(
        self,
        rows: Sequence[Row],
        demonstrations: list[ErrorExample] | None = None,
        config: ErrorDetectionPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[dict[str, bool]]:
        """Batch :meth:`detect_errors`: one cell-level fan-out for all rows.

        All (row, attribute) cells go through a single batch, so the
        thread pool is shared across rows rather than per row.
        """
        config = config or ErrorDetectionPromptConfig()
        cells = [
            (row_index, attribute)
            for row_index, row in enumerate(rows)
            for attribute, value in row.items()
            if value is not None
        ]
        prompts = [
            build_error_detection_prompt(
                ErrorExample(
                    row=rows[row_index], attribute=attribute, label=False
                ),
                demonstrations or [],
                config,
            )
            for row_index, attribute in cells
        ]
        responses = self._complete_many(prompts, workers=workers)
        verdicts: list[dict[str, bool]] = [{} for _ in rows]
        for (row_index, attribute), response in zip(cells, responses):
            verdicts[row_index][attribute] = parse_yes_no(response)
        return verdicts

    # -- imputation ----------------------------------------------------------------

    def impute(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
        config: ImputationPromptConfig | None = None,
    ) -> str:
        """Fill the missing value of ``attribute`` in ``row``."""
        example = ImputationExample(
            row={**row, attribute: None}, attribute=attribute, answer=""
        )
        prompt = build_imputation_prompt(
            example, demonstrations or [], config or ImputationPromptConfig()
        )
        return self.model.complete(prompt).strip()

    def impute_many(
        self,
        items: Sequence[tuple[Row, str]],
        demonstrations: list[ImputationExample] | None = None,
        config: ImputationPromptConfig | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Batch :meth:`impute` over ``(row, attribute)`` items."""
        config = config or ImputationPromptConfig()
        prompts = [
            build_imputation_prompt(
                ImputationExample(
                    row={**row, attribute: None}, attribute=attribute, answer=""
                ),
                demonstrations or [],
                config,
            )
            for row, attribute in items
        ]
        responses = self._complete_many(prompts, workers=workers)
        return [response.strip() for response in responses]

    # -- schema matching ---------------------------------------------------------------

    def match_schema(
        self,
        left: SchemaAttribute,
        right: SchemaAttribute,
        demonstrations: list[SchemaPair] | None = None,
        config: SchemaMatchingPromptConfig | None = None,
    ) -> bool:
        """Do two schema attributes describe the same concept?"""
        pair = SchemaPair(left=left, right=right, label=False)
        prompt = build_schema_matching_prompt(
            pair, demonstrations or [], config or SchemaMatchingPromptConfig()
        )
        return parse_yes_no(self.model.complete(prompt))

    # -- repair ------------------------------------------------------------------------

    def repair_cell(
        self,
        row: Row,
        attribute: str,
        demonstrations: list[ImputationExample] | None = None,
    ) -> str:
        """Propose a corrected value for a (suspected dirty) cell.

        The row is serialized *with* the dirty value and the model is asked
        for the ``corrected <attribute>`` — so it can either repair the
        typo in place (character-level reasoning, large models only) or
        re-derive the value from the rest of the row (functional
        dependencies), whichever its routes support.
        """
        example = ImputationExample(
            row={**row, f"corrected {attribute}": None},
            attribute=f"corrected {attribute}",
            answer="",
        )
        prompt = build_imputation_prompt(example, demonstrations or [])
        return self.model.complete(prompt).strip()

    def repair_row(
        self,
        row: Row,
        error_demonstrations: list[ErrorExample] | None = None,
    ) -> Row:
        """Detect-and-repair every attribute of ``row``.

        Cells the model flags as erroneous are replaced by its proposed
        corrections; everything else passes through untouched.
        """
        verdicts = self.detect_errors(row, error_demonstrations)
        repaired = dict(row)
        for attribute, is_error in verdicts.items():
            if is_error:
                repaired[attribute] = self.repair_cell(row, attribute)
        return repaired

    # -- transformation ----------------------------------------------------------------

    def transform(
        self,
        value: str,
        examples: list[tuple[str, str]] | None = None,
        instruction: str | None = None,
    ) -> str:
        """Transform ``value`` by example (few-shot) or instruction (zero-shot)."""
        config = TransformationPromptConfig(instruction=instruction)
        prompt = build_transformation_prompt(value, examples or [], config)
        return self.model.complete(prompt).strip()

    def transform_many(
        self,
        values: Sequence[str],
        examples: list[tuple[str, str]] | None = None,
        instruction: str | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Batch :meth:`transform` over many values with shared examples."""
        config = TransformationPromptConfig(instruction=instruction)
        prompts = [
            build_transformation_prompt(value, examples or [], config)
            for value in values
        ]
        responses = self._complete_many(prompts, workers=workers)
        return [response.strip() for response in responses]
