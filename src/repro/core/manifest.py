"""Run manifests: one JSON-serializable telemetry record per evaluation.

Production LLM harnesses treat per-run cost, latency, and cache
telemetry as first-class outputs next to the metric itself — a sweep
that cannot say what it spent, where the wall-clock went, or whether the
cache did anything is impossible to budget or debug.  A
:class:`RunManifest` is assembled by
:func:`repro.core.tasks.engine.run_task` for every evaluation and
captures:

* **phase timings** — selection / prompting / completion / scoring
  seconds, plus the total wall clock,
* **request outcomes** — logical requests, failures, retries, and
  latency aggregates from the executor's request log,
* **cache and cost** — hit rate, token tallies, and simulated USD spend
  from the client's :class:`~repro.api.usage.UsageTracker` (with an
  ``unknown_price`` flag instead of an invented rate for unpriced
  models),
* **the resolved configuration** — model, k, selection strategy, split,
  seed, worker count, and the task's prompt config.

``repro run ... --manifest out.json`` writes one; ``repro bench ...
--manifest DIR`` writes one per underlying evaluation plus experiment
totals.  The JSON shape is pinned by ``schemas/run_manifest.schema.json``
and checked in CI; :func:`validate_manifest` is the (dependency-free)
validator behind ``scripts/validate_manifest.py``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

#: Bumped on any backward-incompatible change to the manifest shape.
MANIFEST_SCHEMA_VERSION = 1

PHASE_NAMES = (
    "selection", "prompting", "calibration", "completion", "fallback",
    "scoring",
)


def jsonable(value):
    """Best-effort conversion of ``value`` to JSON-serializable types.

    Dataclasses (prompt configs) become dicts, containers recurse, and
    anything exotic degrades to ``repr`` — a manifest must never fail to
    serialize because a config grew a field.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [jsonable(item) for item in value]
    return repr(value)


@dataclass
class RunManifest:
    """Telemetry for one task evaluation (JSON-serializable)."""

    task: str
    dataset: str
    model: str
    k: int
    selection: str
    split: str
    seed: int
    workers: int
    n_examples: int
    metric_name: str
    metric: float
    #: phase name -> seconds (see :data:`PHASE_NAMES`).
    phases: dict = field(default_factory=dict)
    wall_clock_s: float = 0.0
    #: Aggregates over the completion fan-out's request log:
    #: n_requests / n_failures / n_retries / total_s / mean_s / max_s.
    requests: dict = field(default_factory=dict)
    #: hits / lookups / hit_rate (and backend_calls when the model is a
    #: CompletionClient); ``None`` when the model exposes no cache.
    cache: dict | None = None
    #: per-model token/cost tallies accrued during this run.
    usage: dict = field(default_factory=dict)
    cost_usd: float = 0.0
    #: True when any model in ``usage`` has no published per-token rate
    #: (its cost is reported as 0.0, not invented).
    unknown_price: bool = False
    config: dict = field(default_factory=dict)
    #: Examples set aside under ``on_error="quarantine"`` — one dict per
    #: example: index / error_type / error / attempts / stage.  Empty for
    #: clean runs (and absent from pre-chaos manifests, which still
    #: validate: the schema marks all four resilience fields optional).
    quarantine: list = field(default_factory=list)
    #: True when the metric was computed over a strict subset of the
    #: evaluation set (some examples quarantined).
    degraded: bool = False
    #: Fraction of examples that survived to scoring (1.0 when clean).
    coverage: float = 1.0
    #: Fault-injection identity and tallies when the run executed under a
    #: :class:`~repro.api.faults.FaultPlan` (profile, seed, rates,
    #: injected counts); ``None`` for fault-free runs.
    faults: dict | None = None
    #: Deadline/SLO block (budget_s / elapsed_s / expired) when the run
    #: executed under a :class:`~repro.api.resilience.Deadline`.
    slo: dict | None = None
    #: Hedging tallies (delay_s / fired / wins) when a
    #: :class:`~repro.api.resilience.HedgePolicy` was attached.
    hedges: dict | None = None
    #: Admission-control tallies (admitted / shed, plus the AIMD limiter
    #: state when one is attached) when the run executed under an
    #: :class:`~repro.api.resilience.AdmissionController`.
    shed: dict | None = None
    #: Graceful-degradation breakdown — tier name -> examples served —
    #: when a :class:`~repro.api.resilience.FallbackChain` was configured
    #: (the primary model is listed first).  ``None`` otherwise.
    served_by_tier: dict | None = None
    #: Demonstration-prefix cache tallies (hits / misses /
    #: prefix_tokens / tokens_saved) when the run used the split
    #: prefix + suffix prompt path (see :mod:`repro.core.tasks.prefix`);
    #: ``None`` when the cache was disabled or the task has no prefix
    #: form.  "Charged once" semantics: ``prefix_tokens`` entered the
    #: usage tally at most once for the whole run.
    prefix_cache: dict | None = None
    #: Confidence-routed cascade telemetry when the run served examples
    #: cheapest-tier-first (see :class:`~repro.api.resilience.CascadePolicy`):
    #: tier order, escalation threshold (and whether it was calibrated
    #: per task), per-tier served counts and backend calls, escalation
    #: rate, and estimated serving cost vs. a primary-tier-only run.
    #: ``None`` for non-cascade runs.
    cascade: dict | None = None
    #: Health-gated failover telemetry when the run's model resolved to a
    #: :class:`~repro.api.backends.FailoverBackend` equivalence group:
    #: group name, member order, per-backend attempt and served counts,
    #: and a per-backend health snapshot (circuit state, rolling error
    #: rate, p50 latency).  ``None`` for single-backend runs.
    failover: dict | None = None
    #: Sharded-run telemetry when the manifest was merged from per-shard
    #: journals by ``repro shard-run`` (see :mod:`repro.shard`): shard and
    #: worker counts, restart/lease-reclaim tallies, chaos kill count,
    #: cross-process backend-call accounting (``duplicate_backend_calls``
    #: is the exactly-once invariant — 0 on every clean or resumed run),
    #: and a per-shard progress breakdown.  ``None`` for single-process
    #: runs.
    shards: dict | None = None
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @property
    def cache_hit_rate(self) -> float | None:
        if self.cache is None:
            return None
        return self.cache.get("hit_rate")


# ---------------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema).
#
# CI validates every emitted manifest against the checked-in schema; the
# validator understands the subset the schema uses — type / properties /
# required / items / enum — so neither CI nor the test suite needs the
# third-party ``jsonschema`` package.

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_manifest(instance, schema: dict, path: str = "$") -> list[str]:
    """Structural validation of ``instance`` against ``schema``.

    Returns a list of human-readable problems (empty == valid).  Supports
    the JSON Schema subset used by ``schemas/run_manifest.schema.json``:
    ``type`` (string or list of strings), ``properties``, ``required``,
    ``items``, and ``enum``.
    """
    problems: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        allowed = [expected] if isinstance(expected, str) else list(expected)
        if not any(
            _TYPE_CHECKS.get(name, lambda _v: False)(instance)
            for name in allowed
        ):
            problems.append(
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return problems
    if "enum" in schema and instance not in schema["enum"]:
        problems.append(f"{path}: {instance!r} not in {schema['enum']!r}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                problems.append(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                problems.extend(
                    validate_manifest(
                        instance[name], subschema, f"{path}.{name}"
                    )
                )
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            problems.extend(
                validate_manifest(item, schema["items"], f"{path}[{index}]")
            )
    return problems


__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "PHASE_NAMES",
    "RunManifest",
    "jsonable",
    "validate_manifest",
]
