"""Append-only run checkpoints: journal completions, resume runs.

A killed benchmark sweep should resume, not restart.  The engine
journals every completed example (and every completion-stage quarantine)
to an append-only JSONL file as it goes; re-running the same resolved
configuration against the same journal skips the already-completed
examples and finishes the run — with zero duplicate backend calls for
journaled work.

Journal format — one JSON object per line:

* ``{"type": "header", "version": 1, "fingerprint": ..., "meta": {...}}``
  — written once when the journal is created.  ``fingerprint`` is a
  BLAKE2 hash of the resolved run configuration (task, dataset, model,
  k, split, seed, prompt config, fault plan identity); resuming with a
  *different* resolved config raises :class:`CheckpointMismatchError`
  instead of silently mixing two runs in one file.
* ``{"type": "example", "index": ..., "prompt_sha": ..., "response": ...}``
  — one per completed example.  ``prompt_sha`` lets resume verify the
  journaled entry really belongs to the prompt at that index.
* ``{"type": "quarantine", "index": ..., "error_type": ..., "error": ...,
  "attempts": ..., "stage": "completion"}`` — one per example whose
  completion failed permanently.  Only completion-stage quarantines are
  journaled; parse-stage failures are re-derived deterministically from
  the journaled response text on resume.

Lines are flushed on every append, so a hard kill loses at most the
in-flight line; a trailing partial line (the kill landed mid-write) is
tolerated and ignored on load.

Durability hardening:

* Every appended line carries a ``"crc"`` field — CRC-32 of the
  canonical JSON of the rest of the record.  On load, a mid-file line
  that fails to parse or fails its CRC is *skipped* with a
  :class:`CheckpointCorruptionWarning` (its example simply re-runs)
  instead of crashing the resume or silently trusting bit-rotted data.
  Journals written before the CRC existed load unchanged.
* ``RunCheckpoint(..., fsync=True)`` opts into an ``os.fsync`` after
  every append, extending the crash guarantee from "process kill" to
  "machine power loss" at the cost of one disk barrier per example.
  Sharded runs (``repro shard-run``) enable it, since their whole point
  is surviving violence.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
import zlib

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptionWarning",
    "CheckpointMismatchError",
    "RunCheckpoint",
    "prompt_sha",
    "run_fingerprint",
]

CHECKPOINT_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """The journal on disk belongs to a different resolved run config."""


class CheckpointCorruptionWarning(UserWarning):
    """A mid-file journal record was unreadable and has been skipped."""


def _record_crc(record: dict) -> int:
    """CRC-32 over the canonical JSON of ``record`` (sans its own crc)."""
    body = {k: v for k, v in record.items() if k != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def run_fingerprint(payload: dict) -> str:
    """Stable digest of a resolved run configuration.

    Canonical-JSON + BLAKE2, so the fingerprint is identical across
    processes, platforms, and ``PYTHONHASHSEED`` — two invocations with
    the same resolved config always agree on whether a journal is theirs.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


def prompt_sha(prompt: str) -> str:
    """Short content digest of one prompt (journal integrity check)."""
    return hashlib.blake2b(prompt.encode("utf-8"), digest_size=8).hexdigest()


class RunCheckpoint:
    """One append-only JSONL journal for one (resumable) task run.

    Opening an existing journal replays it: ``completed`` maps example
    index -> journaled response text and ``quarantined`` maps index ->
    the journaled quarantine record.  Appends are lock-protected and
    flushed line-by-line so concurrent executor workers can journal
    safely and a kill loses at most one line.
    """

    def __init__(
        self,
        path,
        fingerprint: str,
        meta: dict | None = None,
        fsync: bool = False,
    ):
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self.fsync = fsync
        self.completed: dict[int, dict] = {}
        self.quarantined: dict[int, dict] = {}
        self._lock = threading.Lock()
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existed:
            self._load()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if not existed:
            self._append(
                {
                    "type": "header",
                    "version": CHECKPOINT_VERSION,
                    "fingerprint": fingerprint,
                    "meta": meta or {},
                }
            )

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        # A trailing partial line means the previous run was killed
        # mid-append; drop it (its example simply re-runs).
        if lines and lines[-1]:
            try:
                json.loads(lines[-1])
            except json.JSONDecodeError:
                lines = lines[:-1]
        header_seen = False
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"checkpoint {self.path} line {lineno}: unparseable "
                    f"record skipped (its example will re-run)",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                warnings.warn(
                    f"checkpoint {self.path} line {lineno}: non-object "
                    f"record skipped",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            if "crc" in record and record["crc"] != _record_crc(record):
                warnings.warn(
                    f"checkpoint {self.path} line {lineno}: CRC mismatch "
                    f"(bit rot or torn write) — record skipped, its "
                    f"example will re-run",
                    CheckpointCorruptionWarning,
                    stacklevel=2,
                )
                continue
            kind = record.get("type")
            if kind == "header":
                header_seen = True
                if record.get("fingerprint") != self.fingerprint:
                    raise CheckpointMismatchError(
                        f"checkpoint {self.path} was written by a different "
                        f"run configuration (journal fingerprint "
                        f"{record.get('fingerprint')!r}, this run "
                        f"{self.fingerprint!r}); use a fresh checkpoint path"
                    )
            elif kind == "example":
                self.completed[int(record["index"])] = record
            elif kind == "quarantine":
                self.quarantined[int(record["index"])] = record
            # Unknown record types are skipped: newer writers stay
            # readable by older code.
        if not header_seen:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} has no header record — not a "
                f"run journal (refusing to append to it)"
            )

    # -- appending ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        stamped = dict(record)
        stamped["crc"] = _record_crc(record)
        line = json.dumps(stamped, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def record_example(self, index: int, prompt: str, response: str) -> None:
        """Journal one completed example (called as completions land)."""
        self._append(
            {
                "type": "example",
                "index": index,
                "prompt_sha": prompt_sha(prompt),
                "response": response,
            }
        )
        with self._lock:
            self.completed[index] = {
                "index": index,
                "prompt_sha": prompt_sha(prompt),
                "response": response,
            }

    def record_quarantine(
        self, index: int, error_type: str, error: str, attempts: int
    ) -> None:
        """Journal one permanently-failed example (completion stage)."""
        record = {
            "type": "quarantine",
            "index": index,
            "error_type": error_type,
            "error": error,
            "attempts": attempts,
            "stage": "completion",
        }
        self._append(record)
        with self._lock:
            self.quarantined[index] = record

    # -- resume queries ----------------------------------------------------

    def response_for(self, index: int, prompt: str) -> str | None:
        """The journaled response of ``prompt`` at ``index``, if any.

        Verifies the journaled ``prompt_sha`` — a stale journal whose
        example order drifted (e.g. the dataset changed underneath)
        yields ``None`` so the example re-runs rather than resuming with
        the wrong completion.
        """
        record = self.completed.get(index)
        if record is None:
            return None
        if record.get("prompt_sha") != prompt_sha(prompt):
            return None
        return record["response"]

    def verify_prompts(self, prompts: list[str]) -> int:
        """How many of ``prompts`` have a valid journaled completion."""
        return sum(
            1
            for index, prompt in enumerate(prompts)
            if self.response_for(index, prompt) is not None
        )

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> RunCheckpoint:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
