"""Evaluation metrics: binary P/R/F1 and exact-match accuracy."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.text.normalize import normalize_whitespace


@dataclass(frozen=True)
class BinaryMetrics:
    """Precision / recall / F1 with raw confusion counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def support(self) -> int:
        return self.true_positives + self.false_negatives

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def binary_metrics(
    predictions: Sequence[bool], labels: Sequence[bool]
) -> BinaryMetrics:
    """P/R/F1 treating ``True`` as the positive class.

    F1 is 0 when there are no true positives (the usual convention, and
    what makes the paper's zero-shot error-detection rows read 0.0).
    """
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels disagree on length")
    tp = fp = fn = tn = 0
    for predicted, actual in zip(predictions, labels):
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and actual:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return BinaryMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def normalize_answer(text: str) -> str:
    """Canonical form for exact-match comparison of generated values.

    Casefolds and collapses whitespace — mild enough that a correct answer
    in the wrong case still counts, strict enough that embellished answers
    ("San Francisco, CA" for "san francisco") do not.
    """
    return normalize_whitespace(text).casefold()


def accuracy(predictions: Sequence[str], answers: Sequence[str]) -> float:
    """Normalized exact-match accuracy (the paper's DI / DT metric)."""
    if len(predictions) != len(answers):
        raise ValueError("predictions and answers disagree on length")
    if not predictions:
        return 0.0
    hits = sum(
        normalize_answer(predicted) == normalize_answer(actual)
        for predicted, actual in zip(predictions, answers)
    )
    return hits / len(predictions)
