"""Blocking: the candidate-generation stage in front of entity matching.

The paper's setup (Section 2.1): "real-world EM systems are often preceded
by blocking heuristics which are used to remove obvious non-matches."  The
benchmark pair sets are post-blocking; this module provides the stage that
would produce them from two raw tables, so the library supports the full
pipeline: two tables → blocked candidate pairs → prompted matching.

Two classic schemes:

* :class:`TokenBlocker` — inverted index on normalized tokens of a chosen
  attribute; a pair is a candidate if it shares at least
  ``min_shared_tokens`` tokens.
* :class:`SortedNeighborhoodBlocker` — sort both tables by a key
  expression, slide a window over the merged order.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.datasets.table import Row
from repro.text.normalize import normalize_value
from repro.text.tokenize import word_tokens


@dataclass(frozen=True)
class CandidatePair:
    """One blocked candidate: indexes into the left and right tables."""

    left_index: int
    right_index: int


@dataclass
class BlockingReport:
    """Effectiveness summary against a known ground truth."""

    n_left: int
    n_right: int
    n_candidates: int
    n_true_matches: int
    n_matches_retained: int

    @property
    def pair_completeness(self) -> float:
        """Recall of true matches (the metric blocking must not sacrifice)."""
        if self.n_true_matches == 0:
            return 1.0
        return self.n_matches_retained / self.n_true_matches

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the full cross product pruned away."""
        total = self.n_left * self.n_right
        if total == 0:
            return 0.0
        return 1.0 - self.n_candidates / total


class TokenBlocker:
    """Inverted-index blocking on the tokens of one attribute."""

    def __init__(self, attribute: str, min_shared_tokens: int = 1,
                 max_block_size: int = 200):
        if min_shared_tokens < 1:
            raise ValueError("min_shared_tokens must be >= 1")
        self.attribute = attribute
        self.min_shared_tokens = min_shared_tokens
        #: Tokens appearing in more than this many rows are too common to
        #: block on ("the", "inc") and are skipped.
        self.max_block_size = max_block_size

    def _tokens(self, row: Row) -> set[str]:
        return set(word_tokens(normalize_value(row.get(self.attribute))))

    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[CandidatePair]:
        """All pairs sharing enough tokens of the blocking attribute."""
        index: dict[str, list[int]] = defaultdict(list)
        for j, row in enumerate(right_rows):
            for token in self._tokens(row):
                index[token].append(j)

        shared_counts: dict[tuple[int, int], int] = defaultdict(int)
        for i, row in enumerate(left_rows):
            for token in self._tokens(row):
                block = index.get(token, ())
                if len(block) > self.max_block_size:
                    continue
                for j in block:
                    shared_counts[(i, j)] += 1
        return [
            CandidatePair(left_index=i, right_index=j)
            for (i, j), count in sorted(shared_counts.items())
            if count >= self.min_shared_tokens
        ]


class SortedNeighborhoodBlocker:
    """Sorted-neighborhood blocking with a sliding window."""

    def __init__(self, key: Callable[[Row], str], window: int = 5):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.key = key
        self.window = window

    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[CandidatePair]:
        """Pairs whose keys fall within the same sliding window."""
        tagged = [("L", i, self.key(row)) for i, row in enumerate(left_rows)]
        tagged += [("R", j, self.key(row)) for j, row in enumerate(right_rows)]
        tagged.sort(key=lambda item: item[2])

        seen: set[tuple[int, int]] = set()
        for start in range(len(tagged)):
            window = tagged[start : start + self.window]
            for side_a, index_a, _key_a in window:
                for side_b, index_b, _key_b in window:
                    if side_a == "L" and side_b == "R":
                        seen.add((index_a, index_b))
        return [CandidatePair(i, j) for i, j in sorted(seen)]


def evaluate_blocking(
    candidates: Sequence[CandidatePair],
    true_matches: Sequence[tuple[int, int]],
    n_left: int,
    n_right: int,
) -> BlockingReport:
    """Score a candidate set against known matching index pairs."""
    candidate_set = {(pair.left_index, pair.right_index) for pair in candidates}
    retained = sum(1 for match in true_matches if tuple(match) in candidate_set)
    return BlockingReport(
        n_left=n_left,
        n_right=n_right,
        n_candidates=len(candidate_set),
        n_true_matches=len(true_matches),
        n_matches_retained=retained,
    )
