"""Error analysis over task runs (the debuggability loop of Section 5.2).

The paper's prompt-tuning procedure is "analyzing errors on the validation
set" — a human activity this module tools up: given a finished
:class:`~repro.core.tasks.common.TaskRun` and the examples it scored,
produce the confusion buckets, per-attribute breakdowns and the concrete
failing examples a prompt engineer reads next.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.metrics import normalize_answer
from repro.core.tasks.common import TaskRun
from repro.datasets.base import ErrorExample, ImputationExample, MatchingPair


@dataclass
class ErrorBreakdown:
    """Confusion buckets plus the examples in each."""

    task: str
    n_examples: int
    false_positives: list = field(default_factory=list)
    false_negatives: list = field(default_factory=list)
    wrong_values: list = field(default_factory=list)   # generation tasks
    by_attribute: Counter = field(default_factory=Counter)

    @property
    def n_errors(self) -> int:
        return (
            len(self.false_positives) + len(self.false_negatives)
            + len(self.wrong_values)
        )

    def summary(self, max_shown: int = 3) -> str:
        lines = [
            f"{self.task}: {self.n_errors} errors over {self.n_examples} examples"
        ]
        if self.false_positives or self.false_negatives:
            lines.append(
                f"  false positives: {len(self.false_positives)}, "
                f"false negatives: {len(self.false_negatives)}"
            )
        if self.by_attribute:
            worst = ", ".join(
                f"{attribute} ({count})"
                for attribute, count in self.by_attribute.most_common(3)
            )
            lines.append(f"  worst attributes: {worst}")
        for title, bucket in (
            ("FP", self.false_positives),
            ("FN", self.false_negatives),
            ("wrong", self.wrong_values),
        ):
            for item in bucket[:max_shown]:
                lines.append(f"  [{title}] {item}")
        return "\n".join(lines)


def _describe_pair(pair: MatchingPair) -> str:
    return f"{dict(pair.left)} vs {dict(pair.right)}"


def analyze_matching(run: TaskRun, pairs: list[MatchingPair]) -> ErrorBreakdown:
    """Confusion buckets for an entity-/schema-matching run."""
    if len(run.predictions) != len(pairs):
        raise ValueError("run and pairs disagree on example count")
    breakdown = ErrorBreakdown(task=run.task, n_examples=len(pairs))
    for prediction, pair in zip(run.predictions, pairs):
        if prediction and not pair.label:
            breakdown.false_positives.append(_describe_pair(pair))
        elif not prediction and pair.label:
            breakdown.false_negatives.append(_describe_pair(pair))
    return breakdown


def analyze_error_detection(
    run: TaskRun, examples: list[ErrorExample]
) -> ErrorBreakdown:
    """Confusion buckets + per-attribute counts for an ED run."""
    if len(run.predictions) != len(examples):
        raise ValueError("run and examples disagree on example count")
    breakdown = ErrorBreakdown(task=run.task, n_examples=len(examples))
    for prediction, example in zip(run.predictions, examples):
        if prediction == example.label:
            continue
        cell = f"{example.attribute}={example.row.get(example.attribute)!r}"
        if prediction:
            breakdown.false_positives.append(cell)
        else:
            breakdown.false_negatives.append(cell)
        breakdown.by_attribute[example.attribute] += 1
    return breakdown


def analyze_imputation(
    run: TaskRun, examples: list[ImputationExample]
) -> ErrorBreakdown:
    """Wrong-value bucket + per-answer counts for a DI run."""
    if len(run.predictions) != len(examples):
        raise ValueError("run and examples disagree on example count")
    breakdown = ErrorBreakdown(task=run.task, n_examples=len(examples))
    for prediction, example in zip(run.predictions, examples):
        if normalize_answer(prediction) == normalize_answer(example.answer):
            continue
        breakdown.wrong_values.append(
            f"{example.answer!r} -> {prediction!r}"
        )
        breakdown.by_attribute[example.answer] += 1
    return breakdown
