"""The generic task-execution engine.

One pipeline serves all registered tasks: resolve the spec, select
demonstrations, build prompts, fan completions across the batch layer,
parse, score.  The per-task modules reduce to declarative
:class:`~repro.core.tasks.spec.TaskSpec` definitions plus thin wrappers
(``run_entity_matching`` & co.) that delegate here.

``run_task(..., trace=True)`` additionally attaches one
:class:`~repro.core.tasks.common.ExampleRecord` per evaluated example —
prompt, response, prediction, label and the request latency pulled from
the executor's :class:`~repro.api.usage.UsageTracker` request log — so
every experiment gets observability without per-task plumbing.
"""

from __future__ import annotations

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.tasks.common import ExampleRecord, TaskRun, subsample
from repro.core.tasks.spec import TaskSpec, get_task


def _complete(model, prompts: list[str], workers: int | None, tracker=None) -> list[str]:
    from repro.api.batch import BatchExecutor, complete_all

    if tracker is None:
        return complete_all(model, prompts, workers=workers)
    executor = BatchExecutor(workers=workers, usage=tracker)
    return complete_all(model, prompts, executor=executor)


def predict(
    spec: TaskSpec | str,
    model,
    examples,
    demonstrations: list,
    config,
    k: int = 0,
    workers: int | None = None,
) -> list:
    """Predictions for ``examples`` under ``spec`` (order-preserving)."""
    spec = get_task(spec)
    prompts = [
        spec.build_prompt(example, demonstrations, config, k)
        for example in examples
    ]
    responses = _complete(model, prompts, workers)
    return [spec.parse_response(response) for response in responses]


def make_validation_scorer(
    spec: TaskSpec | str,
    model,
    dataset,
    config,
    max_validation: int | None = None,
):
    """Score a candidate demonstration list on a validation sample.

    The sample and cap come from the spec (error detection enriches its
    sample with positives; the rest take the head of the validation
    split), and the score is the spec's own metric — so manual curation
    optimizes exactly what the task reports.
    """
    spec = get_task(spec)
    if max_validation is None:
        max_validation = spec.max_validation
    validation = spec.validation_examples(dataset, max_validation)
    labels = [spec.label_of(example) for example in validation]

    def evaluate(demonstrations: list) -> float:
        predictions = predict(spec, model, validation, demonstrations, config)
        metric, _details = spec.score(predictions, labels, validation)
        return metric

    return evaluate


def select_demonstrations(
    spec: TaskSpec | str,
    model,
    dataset,
    k: int,
    config=None,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list:
    """Pick ``k`` demonstrations by name ("manual"/"random") or selector."""
    spec = get_task(spec)
    if k <= 0 or not spec.supports_selection:
        return []
    if config is None:
        config = spec.default_config(dataset)
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(spec, model, dataset, config),
            seed=seed,
            label_of=spec.curation_label_of,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def run_task(
    task: str | TaskSpec,
    model,
    dataset,
    k: int | None = None,
    selection: str | DemonstrationSelector = "manual",
    config=None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` under the named task's spec.

    ``model`` is anything with a ``complete(prompt) -> str`` method, or a
    model name resolved through the simulator.  ``k=None`` uses the
    spec's paper default.  ``workers`` fans the test-set prompts across a
    thread pool without changing the predictions; ``trace=True`` attaches
    per-example :class:`~repro.core.tasks.common.ExampleRecord` entries.
    """
    spec = get_task(task)
    if isinstance(model, str):
        from repro.fm import SimulatedFoundationModel

        model = SimulatedFoundationModel(model)
    if isinstance(dataset, str):
        from repro.datasets import load_dataset

        dataset = load_dataset(dataset)
    if k is None:
        k = spec.default_k
    if config is None:
        config = spec.default_config(dataset)
    demonstrations = select_demonstrations(
        spec, model, dataset, k, config, selection, seed
    )
    examples = subsample(spec.examples_of(dataset, split), max_examples)
    prompts = [
        spec.build_prompt(example, demonstrations, config, k)
        for example in examples
    ]
    tracker = None
    if trace:
        from repro.api.usage import UsageTracker

        tracker = UsageTracker()
    responses = _complete(model, prompts, workers, tracker=tracker)
    predictions = [spec.parse_response(response) for response in responses]
    labels = [spec.label_of(example) for example in examples]
    metric, details = spec.score(predictions, labels, examples)
    records: list[ExampleRecord] = []
    if trace:
        latencies = {
            record.index: record.latency_s for record in tracker.request_log
        }
        records = [
            ExampleRecord(
                index=index,
                prompt=prompt,
                response=response,
                prediction=prediction,
                label=label,
                latency_s=latencies.get(index),
            )
            for index, (prompt, response, prediction, label) in enumerate(
                zip(prompts, responses, predictions, labels)
            )
        ]
    return TaskRun(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=len(demonstrations) if spec.supports_selection else k,
        metric_name=spec.metric_name,
        metric=metric,
        n_examples=len(examples),
        predictions=predictions,
        labels=labels,
        details=details,
        records=records,
    )
