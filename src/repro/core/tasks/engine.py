"""The generic task-execution engine.

One pipeline serves all registered tasks: resolve the spec, select
demonstrations, build prompts, fan completions across the batch layer,
parse, score.  The per-task modules reduce to declarative
:class:`~repro.core.tasks.spec.TaskSpec` definitions plus thin wrappers
(``run_entity_matching`` & co.) that delegate here.

Every run is instrumented: phase wall-clock (selection / prompting /
completion / scoring), request outcomes, cache hit rate, and token/cost
totals are assembled into a :class:`~repro.core.manifest.RunManifest`
attached to the returned :class:`~repro.core.tasks.common.TaskRun`.
String model names resolve to a :class:`~repro.api.client.CompletionClient`
(wrapping the simulator) so accounting and the process-default prompt
cache — the CLI's ``--cache PATH`` — apply without any per-task plumbing.

``run_task(..., trace=True)`` additionally attaches one
:class:`~repro.core.tasks.common.ExampleRecord` per evaluated example —
prompt, response, prediction, label and the request latency pulled from
the executor's :class:`~repro.api.usage.UsageTracker` request log.

Resilience (PR 4):

* ``run_task(on_error="quarantine")`` degrades gracefully instead of
  aborting — an example whose completion permanently fails (retries
  exhausted, circuit open) or whose response is malformed/unparseable is
  set aside as a :class:`~repro.core.tasks.common.QuarantineRecord`,
  scoring proceeds over the survivors, and the run reports ``degraded``
  plus a ``coverage`` fraction.
* ``run_task(checkpoint=path)`` journals each completed example to an
  append-only JSONL file (:mod:`repro.core.checkpoint`); re-running the
  same resolved config resumes, skipping journaled examples with zero
  duplicate backend calls.
* ``run_task(fault_plan=...)`` (or a process-default installed by
  ``repro ... --chaos``) attaches a deterministic
  :class:`~repro.api.faults.FaultPlan` to the underlying client, and the
  manifest grows a ``faults`` section with injection tallies.

Service-level resilience (PR 5, see :mod:`repro.api.resilience`):

* ``run_task(deadline=...)`` bounds the run by a wall budget propagated
  into the executor and client; expiry fails fast with
  :class:`~repro.api.retry.DeadlineExceededError` and the manifest
  reports an ``slo`` block.
* ``run_task(hedge=...)`` races backup completions against stragglers
  (first success wins, budgets charged once); the manifest reports a
  ``hedges`` block.
* ``run_task(admission=...)`` (or ``budget=...``, which builds a
  controller) sheds work before it burns budget; shed examples surface
  as ``stage="admission"`` quarantines and a ``shed`` manifest block.
* ``run_task(fallback=...)`` serves would-be quarantined or shed
  examples from cheaper model tiers — the paper's own 175B→6.7B→1.3B
  ladder — restoring ``coverage == 1.0`` with an explicit
  ``served_by_tier`` breakdown.
"""

from __future__ import annotations

import os
import threading
import time

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.manifest import RunManifest, jsonable
from repro.core.tasks.common import (
    ExampleRecord,
    QuarantineRecord,
    TaskRun,
    subsample,
)
from repro.core.tasks.prefix import (
    PromptPrefixCache,
    get_default_prefix_cache,
    prefix_key,
)
from repro.core.tasks.spec import TaskSpec, get_task

# Process-wide error-handling default.  ``repro ... --chaos`` flips this
# to "quarantine" so every evaluation underneath a bench sweep degrades
# gracefully — same ambient-default pattern as workers / cache / faults.
_DEFAULT_ON_ERROR = "raise"
_DEFAULT_ON_ERROR_LOCK = threading.Lock()

# Process-wide checkpoint directory.  ``repro bench --checkpoint-dir``
# sets it; every run_task underneath then journals to an auto-named file
# in that directory, making whole sweeps resumable.
_DEFAULT_CHECKPOINT_DIR: str | None = None
_DEFAULT_CHECKPOINT_DIR_LOCK = threading.Lock()


def set_default_on_error(mode: str) -> None:
    """Set the process-wide ``on_error`` default ("raise"/"quarantine")."""
    global _DEFAULT_ON_ERROR
    if mode not in ("raise", "quarantine"):
        raise ValueError(
            f'on_error must be "raise" or "quarantine", got {mode!r}'
        )
    with _DEFAULT_ON_ERROR_LOCK:
        _DEFAULT_ON_ERROR = mode


def get_default_on_error() -> str:
    with _DEFAULT_ON_ERROR_LOCK:
        return _DEFAULT_ON_ERROR


def set_default_checkpoint_dir(path: str | None) -> None:
    """Install (or with ``None``, clear) the default checkpoint directory."""
    global _DEFAULT_CHECKPOINT_DIR
    with _DEFAULT_CHECKPOINT_DIR_LOCK:
        _DEFAULT_CHECKPOINT_DIR = path


def get_default_checkpoint_dir() -> str | None:
    with _DEFAULT_CHECKPOINT_DIR_LOCK:
        return _DEFAULT_CHECKPOINT_DIR


def _resolve_on_error(on_error: str | None) -> str:
    if on_error is None:
        return get_default_on_error()
    if on_error not in ("raise", "quarantine"):
        raise ValueError(
            f'on_error must be "raise" or "quarantine", got {on_error!r}'
        )
    return on_error


def _complete(
    model,
    prompts: list[str],
    workers: int | None,
    tracker=None,
    retry_policy=None,
    on_error: str = "raise",
    breaker=None,
) -> list:
    """Fan ``prompts`` across an executor; maybe scatter failures.

    In quarantine mode the returned list may contain
    :class:`~repro.api.batch.BatchFailure` placeholders in the slots of
    permanently-failed prompts; callers turn those into quarantines.
    """
    from repro.api.batch import make_executor

    executor = make_executor(
        workers=workers, usage=tracker, policy=retry_policy, breaker=breaker
    )
    map_mode = "return" if on_error == "quarantine" else "raise"
    return executor.map(model.complete, prompts, on_error=map_mode)


def _resolve_model(model, fault_plan=None):
    """Model objects pass through; names become accounted clients.

    A :class:`~repro.api.client.CompletionClient` adds caching (the
    process-default cache if ``--cache`` installed one, else a private
    in-memory one) and usage accounting without changing any completion:
    at temperature 0 the wrapped simulator returns exactly what the bare
    simulator would.  Non-client model *objects* are wrapped only when a
    default cache is installed — a bench module's bare simulator then
    shares the sweep's persistent cache too — or when a fault plan must
    be injected (the plan hooks live on the client).
    """
    from repro.api.cache import get_default_cache
    from repro.api.client import CompletionClient

    if isinstance(model, str):
        return CompletionClient(
            model, cache=get_default_cache(), fault_plan=fault_plan
        )
    if isinstance(model, CompletionClient):
        if fault_plan is not None and model.fault_plan is None:
            model.fault_plan = fault_plan
        return model
    default_cache = get_default_cache()
    if (fault_plan is not None or default_cache is not None) and hasattr(
        model, "complete"
    ):
        return CompletionClient(
            model, cache=default_cache, fault_plan=fault_plan
        )
    return model


def _parse_checked(spec: TaskSpec, response):
    """Parse one response, normalizing malformation into ``ParseError``.

    Quarantine-mode only: responses are validated the way a production
    harness checks body shape before parsing (empty, non-text, garbage
    bytes → typed error, not an ``IndexError`` three frames deep), and a
    parser that still chokes has its untyped exception wrapped.
    """
    from repro.api.faults import malformed_reason
    from repro.api.retry import ParseError

    reason = malformed_reason(response)
    if reason is not None:
        raise ParseError(reason)
    try:
        return spec.parse_response(response)
    except ParseError:
        raise
    except Exception as exc:
        raise ParseError(
            f"parse_response failed with {type(exc).__name__}: {exc}"
        ) from exc


def predict(
    spec: TaskSpec | str,
    model,
    examples,
    demonstrations: list,
    config,
    k: int = 0,
    workers: int | None = None,
    on_error: str | None = None,
) -> list:
    """Predictions for ``examples`` under ``spec`` (order-preserving).

    Under ``on_error="quarantine"`` a permanently-failed or unparseable
    example yields ``None`` in its slot instead of raising; callers
    (validation scorers) drop those slots before scoring.
    """
    from repro.api.batch import BatchFailure
    from repro.api.retry import ParseError

    spec = get_task(spec)
    on_error = _resolve_on_error(on_error)
    if spec.supports_prefix:
        # Build the shared demonstration prefix once for the whole call
        # (no cross-call cache here: validation scoring sweeps many
        # candidate demonstration lists, each used exactly once).
        prefix = spec.build_prefix(demonstrations, config)
        prompts = [
            prefix + spec.build_suffix(example, config) for example in examples
        ]
    else:
        prompts = [
            spec.build_prompt(example, demonstrations, config, k)
            for example in examples
        ]
    responses = _complete(model, prompts, workers, on_error=on_error)
    if on_error != "quarantine":
        return [spec.parse_response(response) for response in responses]
    predictions = []
    for response in responses:
        if isinstance(response, BatchFailure):
            predictions.append(None)
            continue
        try:
            predictions.append(_parse_checked(spec, response))
        except ParseError:
            predictions.append(None)
    return predictions


def make_validation_scorer(
    spec: TaskSpec | str,
    model,
    dataset,
    config,
    max_validation: int | None = None,
    on_error: str | None = None,
):
    """Score a candidate demonstration list on a validation sample.

    The sample and cap come from the spec (error detection enriches its
    sample with positives; the rest take the head of the validation
    split), and the score is the spec's own metric — so manual curation
    optimizes exactly what the task reports.  In quarantine mode,
    examples that failed (``None`` predictions) are dropped from the
    score rather than poisoning the curation signal.
    """
    spec = get_task(spec)
    on_error = _resolve_on_error(on_error)
    if max_validation is None:
        max_validation = spec.max_validation
    validation = spec.validation_examples(dataset, max_validation)
    labels = [spec.label_of(example) for example in validation]

    def evaluate(demonstrations: list) -> float:
        predictions = predict(
            spec, model, validation, demonstrations, config,
            on_error=on_error,
        )
        if on_error == "quarantine":
            kept = [
                (prediction, label, example)
                for prediction, label, example in zip(
                    predictions, labels, validation
                )
                if prediction is not None
            ]
            if not kept:
                return 0.0
            predictions = [item[0] for item in kept]
            kept_labels = [item[1] for item in kept]
            kept_examples = [item[2] for item in kept]
            metric, _details = spec.score(
                predictions, kept_labels, kept_examples
            )
            return metric
        metric, _details = spec.score(predictions, labels, validation)
        return metric

    return evaluate


def select_demonstrations(
    spec: TaskSpec | str,
    model,
    dataset,
    k: int,
    config=None,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
    on_error: str | None = None,
) -> list:
    """Pick ``k`` demonstrations by name ("manual"/"random") or selector."""
    spec = get_task(spec)
    if k <= 0 or not spec.supports_selection:
        return []
    if config is None:
        config = spec.default_config(dataset)
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(
                spec, model, dataset, config, on_error=on_error
            ),
            seed=seed,
            label_of=spec.curation_label_of,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def _selection_name(selection) -> str:
    if isinstance(selection, DemonstrationSelector):
        return type(selection).__name__
    return str(selection)


def _build_manifest(
    spec,
    dataset,
    model,
    *,
    k: int,
    selection,
    split: str,
    seed: int,
    workers: int | None,
    n_examples: int,
    metric: float,
    phases: dict[str, float],
    wall_clock_s: float,
    tracker,
    usage_before,
    config,
    quarantine: list | None = None,
    degraded: bool = False,
    coverage: float = 1.0,
    faults: dict | None = None,
    slo: dict | None = None,
    hedges: dict | None = None,
    shed: dict | None = None,
    served_by_tier: dict | None = None,
    prefix_cache: dict | None = None,
) -> RunManifest:
    from repro.api.batch import resolve_workers
    from repro.api.client import CompletionClient
    from repro.api.usage import usage_delta

    usage_section: dict[str, dict] = {}
    cache_section = None
    cost_usd = 0.0
    unknown_price = False
    if isinstance(model, CompletionClient) and usage_before is not None:
        delta = usage_delta(usage_before, model.usage.snapshot())
        hits = sum(usage.n_cache_hits for usage in delta.values())
        lookups = sum(usage.n_requests for usage in delta.values())
        for name, usage in sorted(delta.items()):
            usage_section[name] = {
                "n_requests": usage.n_requests,
                "n_cache_hits": usage.n_cache_hits,
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "total_tokens": usage.total_tokens,
                "cost_usd": usage.cost_usd,
                "unknown_price": not usage.known_price,
            }
            cost_usd += usage.cost_usd
            unknown_price = unknown_price or not usage.known_price
        cache_section = {
            "hits": hits,
            "lookups": lookups,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "entries": len(model.cache),
            "backend_calls": model.stats["backend_calls"],
        }

    return RunManifest(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=k,
        selection=_selection_name(selection),
        split=split,
        seed=seed,
        workers=resolve_workers(workers),
        n_examples=n_examples,
        metric_name=spec.metric_name,
        metric=metric,
        phases=dict(phases),
        wall_clock_s=wall_clock_s,
        requests=tracker.latency_summary(),
        cache=cache_section,
        usage=usage_section,
        cost_usd=cost_usd,
        unknown_price=unknown_price,
        config=jsonable(config),
        quarantine=[record.to_dict() for record in (quarantine or [])],
        degraded=degraded,
        coverage=coverage,
        faults=faults,
        slo=slo,
        hedges=hedges,
        shed=shed,
        served_by_tier=served_by_tier,
        prefix_cache=prefix_cache,
    )


def _open_checkpoint(
    checkpoint, spec, dataset, model, *,
    k, selection, split, seed, max_examples, config, fault_plan,
):
    """Resolve the checkpoint path (explicit or ambient) and open it."""
    from repro.core.checkpoint import RunCheckpoint, run_fingerprint

    payload = {
        "task": spec.name,
        "dataset": dataset.name,
        "model": getattr(model, "name", type(model).__name__),
        "k": k,
        "selection": _selection_name(selection),
        "split": split,
        "seed": seed,
        "max_examples": max_examples,
        "config": jsonable(config),
        "faults": fault_plan.describe() if fault_plan is not None else None,
    }
    fingerprint = run_fingerprint(payload)
    if checkpoint is None:
        default_dir = get_default_checkpoint_dir()
        if default_dir is None:
            return None
        checkpoint = os.path.join(
            default_dir,
            f"{spec.name}_{dataset.name}_{fingerprint[:12]}.jsonl",
        )
    return RunCheckpoint(checkpoint, fingerprint, meta=payload)


def _resolve_resilience(deadline, hedge, fallback, admission, budget, breaker):
    """Normalize the service-level knobs into resilience objects.

    Accepts the ergonomic forms the CLI produces — a float deadline in
    seconds, ``hedge=True`` or a float hedge delay, a comma-separated
    fallback string — as well as ready-made objects.  When a shared
    budget (or a breaker worth consulting) is given without an explicit
    controller, an :class:`~repro.api.resilience.AdmissionController` is
    built so shedding engages by default.
    """
    from repro.api.resilience import (
        AdmissionController,
        Deadline,
        FallbackChain,
        HedgePolicy,
    )

    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline(float(deadline))
    if hedge is False:
        hedge = None
    if hedge is not None and not isinstance(hedge, HedgePolicy):
        hedge = HedgePolicy() if hedge is True else HedgePolicy(
            delay_s=float(hedge)
        )
    if fallback is not None and not isinstance(fallback, FallbackChain):
        if isinstance(fallback, str):
            fallback = FallbackChain.parse(fallback)
        else:
            fallback = FallbackChain(fallback)
    if admission is None and budget is not None:
        admission = AdmissionController(budget=budget, breaker=breaker)
    return deadline, hedge, fallback, admission


def run_task(
    task: str | TaskSpec,
    model,
    dataset,
    k: int | None = None,
    selection: str | DemonstrationSelector = "manual",
    config=None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
    retry_policy=None,
    on_error: str | None = None,
    checkpoint=None,
    fault_plan=None,
    breaker=None,
    deadline=None,
    hedge=None,
    admission=None,
    priority: str = "bench",
    fallback=None,
    budget=None,
    executor: str | None = None,
    prefix_cache=None,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` under the named task's spec.

    ``model`` is anything with a ``complete(prompt) -> str`` method, or a
    model name resolved through the simulator (wrapped in an accounted
    :class:`~repro.api.client.CompletionClient`).  ``k=None`` uses the
    spec's paper default.  ``workers`` fans the test-set prompts across a
    thread pool without changing the predictions; ``retry_policy``
    (a :class:`~repro.api.retry.RetryPolicy`) governs backoff for that
    fan-out; ``trace=True`` attaches per-example
    :class:`~repro.core.tasks.common.ExampleRecord` entries.  The
    returned run always carries a populated
    :class:`~repro.core.manifest.RunManifest` in ``.manifest``.

    Resilience knobs (``None`` inherits the process-wide defaults the
    CLI's chaos flags install):

    * ``on_error="quarantine"`` — permanently-failed or unparseable
      examples are quarantined instead of aborting the run; the metric
      is computed over the survivors and the run reports ``degraded``
      plus ``coverage``.
    * ``checkpoint=path`` — journal per-example completions to an
      append-only JSONL file and resume from it on re-invocation (zero
      duplicate backend calls for journaled examples).
    * ``fault_plan`` — a :class:`~repro.api.faults.FaultPlan` attached
      to the underlying client for deterministic fault injection.
    * ``breaker`` — a :class:`~repro.api.batch.CircuitBreaker` guarding
      the completion fan-out.

    Service-level knobs (consulted deadline → hedge → shed → degrade;
    see DESIGN §4b-iv):

    * ``deadline`` — seconds (or a ready
      :class:`~repro.api.resilience.Deadline`) of wall budget for the
      run; expiry is fatal (fail fast, typed
      :class:`~repro.api.retry.DeadlineExceededError`).
    * ``hedge`` — ``True`` (default policy), a float hedge delay in
      seconds, or a ready :class:`~repro.api.resilience.HedgePolicy`:
      straggling completions get one backup attempt, first success
      wins, budgets/usage charged once.
    * ``admission`` / ``budget`` / ``priority`` — an
      :class:`~repro.api.resilience.AdmissionController` (built
      automatically from a :class:`~repro.api.batch.SharedBudget` when
      only ``budget`` is given) sheds work *before* it burns budget;
      shed examples quarantine with ``stage="admission"`` under
      ``on_error="quarantine"``.
    * ``fallback`` — tier names (``"gpt3-6.7b,gpt3-1.3b"``, a list, or a
      ready :class:`~repro.api.resilience.FallbackChain`): quarantined
      or shed examples are re-served by cheaper tiers before scoring,
      restoring coverage with a ``served_by_tier`` breakdown.

    Serving knobs (PR 6):

    * ``executor`` — ``"thread"`` (the PR 1 pool) or ``"async"`` (the
      continuous-batching :class:`~repro.api.abatch.AsyncBatchExecutor`);
      ``None`` inherits the process default (the CLI's ``--executor``).
      Predictions, quarantines, and manifests are byte-identical through
      either path.
    * ``prefix_cache`` — ``False`` disables the demonstration-prefix
      cache, a ready :class:`~repro.core.tasks.prefix.PromptPrefixCache`
      replaces the process default.  When active (the default for tasks
      whose prompts split), the shared prefix is built and tokenized
      once per run, the manifest grows a ``prefix_cache`` block, and
      prefix tokens are charged once per run (see
      :meth:`~repro.api.client.CompletionClient.begin_prompt_prefix`).
    """
    from repro.api.batch import BatchFailure, make_executor
    from repro.api.client import CompletionClient
    from repro.api.faults import get_default_fault_plan
    from repro.api.retry import ParseError
    from repro.api.usage import UsageTracker, count_tokens

    run_started = time.perf_counter()
    spec = get_task(task)
    on_error = _resolve_on_error(on_error)
    if fault_plan is None:
        fault_plan = get_default_fault_plan()
    model = _resolve_model(model, fault_plan=fault_plan)
    if fault_plan is None:
        # A client handed in with its own plan attached still gets full
        # fault accounting in the manifest.
        fault_plan = getattr(model, "fault_plan", None)
    deadline, hedge, fallback, admission = _resolve_resilience(
        deadline, hedge, fallback, admission, budget, breaker
    )
    if isinstance(model, CompletionClient):
        # The client is where hedging can uphold its dedup invariants
        # (under the cache and single-flight lock) and where a deadline
        # catches stragglers between executor attempts.
        if hedge is not None:
            model.hedge_policy = hedge
        if deadline is not None:
            model.deadline = deadline
    if isinstance(dataset, str):
        from repro.datasets import load_dataset

        dataset = load_dataset(dataset)
    if k is None:
        k = spec.default_k
    if config is None:
        config = spec.default_config(dataset)
    usage_before = (
        model.usage.snapshot() if isinstance(model, CompletionClient) else None
    )
    fault_stats_before = fault_plan.stats() if fault_plan is not None else {}
    phases: dict[str, float] = {}

    phase_started = time.perf_counter()
    demonstrations = select_demonstrations(
        spec, model, dataset, k, config, selection, seed, on_error=on_error
    )
    phases["selection"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    examples = subsample(spec.examples_of(dataset, split), max_examples)
    prefix_obj = None
    prefix_was_cached = False
    suffixes: list[str] | None = None
    if prefix_cache is not False and spec.supports_prefix:
        cache_obj = (
            prefix_cache
            if isinstance(prefix_cache, PromptPrefixCache)
            else get_default_prefix_cache()
        )
        key = prefix_key(
            spec.name, k, seed, config,
            dataset=dataset.name,
            selection=_selection_name(selection),
            demonstrations=demonstrations,
        )
        prefix_obj, prefix_was_cached = cache_obj.get_or_build(
            key, lambda: spec.build_prefix(demonstrations, config)
        )
        suffixes = [spec.build_suffix(example, config) for example in examples]
        prompts = [prefix_obj.text + suffix for suffix in suffixes]
    else:
        prompts = [
            spec.build_prompt(example, demonstrations, config, k)
            for example in examples
        ]
    phases["prompting"] = time.perf_counter() - phase_started

    journal = _open_checkpoint(
        checkpoint, spec, dataset, model,
        k=k, selection=selection, split=split, seed=seed,
        max_examples=max_examples, config=config, fault_plan=fault_plan,
    )

    # The tracker receives one RequestRecord per evaluated example from
    # the executor — retries, failures, and latency for the manifest,
    # and the per-example latency join for trace records.
    tracker = UsageTracker()
    phase_started = time.perf_counter()
    quarantine: dict[int, QuarantineRecord] = {}
    responses: list = [None] * len(prompts)
    pending: list[int] = []
    for index, prompt in enumerate(prompts):
        journaled = (
            journal.response_for(index, prompt) if journal is not None else None
        )
        if journaled is not None:
            responses[index] = journaled
            continue
        prior = journal.quarantined.get(index) if journal is not None else None
        if prior is not None and on_error == "quarantine":
            # A previous attempt already exhausted this example's
            # retries; honor the journaled verdict instead of re-failing.
            quarantine[index] = QuarantineRecord(
                index=index,
                error_type=str(prior.get("error_type", "Exception")),
                error=str(prior.get("error", "")),
                attempts=int(prior.get("attempts", 1)),
                stage="completion",
            )
            continue
        pending.append(index)

    # Prefix-aware accounting: arm the one-shot prefix charge on the
    # client and pass per-example suffix counts so the shared prefix is
    # tokenized (and charged) once per run instead of once per request.
    hint_client = model if isinstance(model, CompletionClient) else None
    if prefix_obj is not None and hint_client is not None:
        hint_client.begin_prompt_prefix(prefix_obj.n_tokens)

    def complete_one(index: int) -> str:
        if suffixes is not None and hint_client is not None:
            response = hint_client.complete(
                prompts[index], prompt_tokens=count_tokens(suffixes[index])
            )
        else:
            response = model.complete(prompts[index])
        if journal is not None:
            journal.record_example(index, prompts[index], response)
        return response

    if pending:
        batch_executor = make_executor(
            executor, workers=workers, usage=tracker, policy=retry_policy,
            breaker=breaker, budget=budget, deadline=deadline,
            admission=admission, priority=priority,
        )
        outcomes = batch_executor.map(
            complete_one,
            pending,
            on_error="return" if on_error == "quarantine" else "raise",
        )
        for position, outcome in enumerate(outcomes):
            index = pending[position]
            if isinstance(outcome, BatchFailure):
                shed = outcome.error_type == "Shed"
                quarantine[index] = QuarantineRecord(
                    index=index,
                    error_type=outcome.error_type,
                    error=str(outcome.error),
                    attempts=outcome.attempts,
                    stage="admission" if shed else "completion",
                )
                if journal is not None and not shed:
                    # Shedding is a capacity decision about *this* run,
                    # not a verdict about the example — journaling it
                    # would wrongly skip the example on resume.
                    journal.record_quarantine(
                        index,
                        outcome.error_type,
                        str(outcome.error),
                        outcome.attempts,
                    )
            else:
                responses[index] = outcome
    if prefix_obj is not None and hint_client is not None:
        # Disarm so an unclaimed charge (fully cache-warm run) cannot
        # leak into the next run sharing this client.
        hint_client.end_prompt_prefix()
    phases["completion"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    predictions: list = [None] * len(prompts)
    for index, response in enumerate(responses):
        if index in quarantine:
            continue
        if on_error == "quarantine":
            try:
                predictions[index] = _parse_checked(spec, response)
            except ParseError as exc:
                quarantine[index] = QuarantineRecord(
                    index=index,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    attempts=1,
                    stage="parse",
                )
        else:
            predictions[index] = spec.parse_response(response)
    parse_elapsed_s = time.perf_counter() - phase_started

    # Graceful degradation: walk the fallback ladder for every example
    # that would otherwise score as a hole (quarantined or shed).  Tier
    # responses are parsed through the same checked path; an example a
    # tier cannot serve carries to the next one.  Fallback completions
    # are deliberately *not* journaled to the checkpoint — a resumed run
    # should retry the primary first, not bake in a degraded answer.
    served_by_tier: dict[str, int] | None = None
    n_failed_primary = len(quarantine)
    if fallback is not None:
        phase_started = time.perf_counter()
        failed = sorted(quarantine)
        tier_usage = (
            model.usage if isinstance(model, CompletionClient) else None
        )
        tier_counts: dict[str, int] = {}
        for tier_index in range(len(fallback.tiers)):
            tier_label = fallback.tier_name(tier_index)
            tier_counts.setdefault(tier_label, 0)
            if not failed:
                continue
            tier_model = fallback.resolve(tier_index, usage=tier_usage)
            # A fresh executor, usage=None: tier requests must not enter
            # ``tracker``'s request log, whose indices are positions in
            # ``pending`` (the trace latency join relies on that).
            tier_executor = make_executor(executor, workers=workers)
            outcomes = tier_executor.map(
                lambda index: tier_model.complete(prompts[index]),
                failed,
                on_error="return",
            )
            still_failed: list[int] = []
            for position, outcome in enumerate(outcomes):
                index = failed[position]
                if isinstance(outcome, BatchFailure):
                    still_failed.append(index)
                    continue
                try:
                    prediction = _parse_checked(spec, outcome)
                except ParseError:
                    still_failed.append(index)
                    continue
                responses[index] = outcome
                predictions[index] = prediction
                del quarantine[index]
                tier_counts[tier_label] += 1
            failed = still_failed
        primary_name = getattr(model, "name", type(model).__name__)
        served_by_tier = {primary_name: len(examples) - n_failed_primary}
        for name, count in tier_counts.items():
            served_by_tier[name] = served_by_tier.get(name, 0) + count
        phases["fallback"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    labels = [spec.label_of(example) for example in examples]
    survivors = [
        index for index in range(len(examples)) if index not in quarantine
    ]
    if quarantine:
        metric, details = spec.score(
            [predictions[index] for index in survivors],
            [labels[index] for index in survivors],
            [examples[index] for index in survivors],
        )
    else:
        metric, details = spec.score(predictions, labels, examples)
    coverage = (len(survivors) / len(examples)) if examples else 1.0
    # A run the fallback ladder fully rescued still reports degraded:
    # coverage is 1.0 but some answers came from a cheaper tier.
    degraded = bool(quarantine) or n_failed_primary > 0
    phases["scoring"] = parse_elapsed_s + (time.perf_counter() - phase_started)

    if journal is not None:
        journal.close()

    records: list[ExampleRecord] = []
    if trace:
        # Executor indices are positions in ``pending``; map them back
        # to example indices for the latency join.
        latencies = {
            pending[record.index]: record.latency_s
            for record in tracker.request_log
            if record.index < len(pending)
        }
        records = [
            ExampleRecord(
                index=index,
                prompt=prompt,
                response=response,
                prediction=prediction,
                label=label,
                latency_s=latencies.get(index),
            )
            for index, (prompt, response, prediction, label) in enumerate(
                zip(prompts, responses, predictions, labels)
            )
        ]

    faults_section = None
    if fault_plan is not None:
        fault_stats_after = fault_plan.stats()
        injected = {
            kind: count - fault_stats_before.get(kind, 0)
            for kind, count in fault_stats_after.items()
            if count - fault_stats_before.get(kind, 0)
        }
        faults_section = dict(fault_plan.describe())
        faults_section["injected"] = injected
        if breaker is not None:
            faults_section["breaker"] = breaker.stats()

    prefix_section = None
    if prefix_obj is not None:
        # Per-run view: every example consulted the cached prefix; the
        # build (if any) is the single miss.  ``tokens_saved`` is the
        # token-counting work the cache avoided versus per-example
        # full-prompt counting.
        n_lookups = len(examples)
        misses = 0 if prefix_was_cached else min(1, n_lookups)
        hits = max(0, n_lookups - misses)
        prefix_section = {
            "hits": hits,
            "misses": misses,
            "prefix_tokens": prefix_obj.n_tokens,
            "tokens_saved": prefix_obj.n_tokens * hits,
        }

    quarantine_records = [quarantine[index] for index in sorted(quarantine)]
    effective_k = len(demonstrations) if spec.supports_selection else k
    manifest = _build_manifest(
        spec, dataset, model,
        k=effective_k, selection=selection, split=split, seed=seed,
        workers=workers, n_examples=len(examples), metric=metric,
        phases=phases, wall_clock_s=time.perf_counter() - run_started,
        tracker=tracker, usage_before=usage_before, config=config,
        quarantine=quarantine_records, degraded=degraded,
        coverage=coverage, faults=faults_section,
        slo=deadline.describe() if deadline is not None else None,
        hedges=hedge.stats() if hedge is not None else None,
        shed=admission.stats() if admission is not None else None,
        served_by_tier=served_by_tier,
        prefix_cache=prefix_section,
    )
    return TaskRun(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=effective_k,
        metric_name=spec.metric_name,
        metric=metric,
        n_examples=len(examples),
        predictions=predictions,
        labels=labels,
        details=details,
        records=records,
        quarantine=quarantine_records,
        degraded=degraded,
        coverage=coverage,
        served_by_tier=served_by_tier,
        manifest=manifest,
    )
