"""The generic task-execution engine.

One pipeline serves all registered tasks: resolve the spec, select
demonstrations, build prompts, fan completions across the batch layer,
parse, score.  The per-task modules reduce to declarative
:class:`~repro.core.tasks.spec.TaskSpec` definitions plus thin wrappers
(``run_entity_matching`` & co.) that delegate here.

Every run is instrumented: phase wall-clock (selection / prompting /
completion / scoring), request outcomes, cache hit rate, and token/cost
totals are assembled into a :class:`~repro.core.manifest.RunManifest`
attached to the returned :class:`~repro.core.tasks.common.TaskRun`.
String model names resolve to a :class:`~repro.api.client.CompletionClient`
(wrapping the simulator) so accounting and the process-default prompt
cache — the CLI's ``--cache PATH`` — apply without any per-task plumbing.

``run_task(..., trace=True)`` additionally attaches one
:class:`~repro.core.tasks.common.ExampleRecord` per evaluated example —
prompt, response, prediction, label and the request latency pulled from
the executor's :class:`~repro.api.usage.UsageTracker` request log.
"""

from __future__ import annotations

import time

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.manifest import RunManifest, jsonable
from repro.core.tasks.common import ExampleRecord, TaskRun, subsample
from repro.core.tasks.spec import TaskSpec, get_task


def _complete(
    model,
    prompts: list[str],
    workers: int | None,
    tracker=None,
    retry_policy=None,
) -> list[str]:
    from repro.api.batch import BatchExecutor, complete_all

    executor = BatchExecutor(
        workers=workers, usage=tracker, policy=retry_policy
    )
    return complete_all(model, prompts, executor=executor)


def _resolve_model(model):
    """Model objects pass through; names become accounted clients.

    A :class:`~repro.api.client.CompletionClient` adds caching (the
    process-default cache if ``--cache`` installed one, else a private
    in-memory one) and usage accounting without changing any completion:
    at temperature 0 the wrapped simulator returns exactly what the bare
    simulator would.  Non-client model *objects* are wrapped only when a
    default cache is installed — a bench module's bare simulator then
    shares the sweep's persistent cache too.
    """
    from repro.api.cache import get_default_cache
    from repro.api.client import CompletionClient

    if isinstance(model, str):
        return CompletionClient(model, cache=get_default_cache())
    default_cache = get_default_cache()
    if (
        default_cache is not None
        and not isinstance(model, CompletionClient)
        and hasattr(model, "complete")
    ):
        return CompletionClient(model, cache=default_cache)
    return model


def predict(
    spec: TaskSpec | str,
    model,
    examples,
    demonstrations: list,
    config,
    k: int = 0,
    workers: int | None = None,
) -> list:
    """Predictions for ``examples`` under ``spec`` (order-preserving)."""
    spec = get_task(spec)
    prompts = [
        spec.build_prompt(example, demonstrations, config, k)
        for example in examples
    ]
    responses = _complete(model, prompts, workers)
    return [spec.parse_response(response) for response in responses]


def make_validation_scorer(
    spec: TaskSpec | str,
    model,
    dataset,
    config,
    max_validation: int | None = None,
):
    """Score a candidate demonstration list on a validation sample.

    The sample and cap come from the spec (error detection enriches its
    sample with positives; the rest take the head of the validation
    split), and the score is the spec's own metric — so manual curation
    optimizes exactly what the task reports.
    """
    spec = get_task(spec)
    if max_validation is None:
        max_validation = spec.max_validation
    validation = spec.validation_examples(dataset, max_validation)
    labels = [spec.label_of(example) for example in validation]

    def evaluate(demonstrations: list) -> float:
        predictions = predict(spec, model, validation, demonstrations, config)
        metric, _details = spec.score(predictions, labels, validation)
        return metric

    return evaluate


def select_demonstrations(
    spec: TaskSpec | str,
    model,
    dataset,
    k: int,
    config=None,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list:
    """Pick ``k`` demonstrations by name ("manual"/"random") or selector."""
    spec = get_task(spec)
    if k <= 0 or not spec.supports_selection:
        return []
    if config is None:
        config = spec.default_config(dataset)
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(spec, model, dataset, config),
            seed=seed,
            label_of=spec.curation_label_of,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def _build_manifest(
    spec,
    dataset,
    model,
    *,
    k: int,
    selection,
    split: str,
    seed: int,
    workers: int | None,
    n_examples: int,
    metric: float,
    phases: dict[str, float],
    wall_clock_s: float,
    tracker,
    usage_before,
    config,
) -> RunManifest:
    from repro.api.batch import resolve_workers
    from repro.api.client import CompletionClient
    from repro.api.usage import usage_delta

    if isinstance(selection, DemonstrationSelector):
        selection_name = type(selection).__name__
    else:
        selection_name = str(selection)

    usage_section: dict[str, dict] = {}
    cache_section = None
    cost_usd = 0.0
    unknown_price = False
    if isinstance(model, CompletionClient) and usage_before is not None:
        delta = usage_delta(usage_before, model.usage.snapshot())
        hits = sum(usage.n_cache_hits for usage in delta.values())
        lookups = sum(usage.n_requests for usage in delta.values())
        for name, usage in sorted(delta.items()):
            usage_section[name] = {
                "n_requests": usage.n_requests,
                "n_cache_hits": usage.n_cache_hits,
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "total_tokens": usage.total_tokens,
                "cost_usd": usage.cost_usd,
                "unknown_price": not usage.known_price,
            }
            cost_usd += usage.cost_usd
            unknown_price = unknown_price or not usage.known_price
        cache_section = {
            "hits": hits,
            "lookups": lookups,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "entries": len(model.cache),
            "backend_calls": model.stats["backend_calls"],
        }

    return RunManifest(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=k,
        selection=selection_name,
        split=split,
        seed=seed,
        workers=resolve_workers(workers),
        n_examples=n_examples,
        metric_name=spec.metric_name,
        metric=metric,
        phases=dict(phases),
        wall_clock_s=wall_clock_s,
        requests=tracker.latency_summary(),
        cache=cache_section,
        usage=usage_section,
        cost_usd=cost_usd,
        unknown_price=unknown_price,
        config=jsonable(config),
    )


def run_task(
    task: str | TaskSpec,
    model,
    dataset,
    k: int | None = None,
    selection: str | DemonstrationSelector = "manual",
    config=None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
    retry_policy=None,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` under the named task's spec.

    ``model`` is anything with a ``complete(prompt) -> str`` method, or a
    model name resolved through the simulator (wrapped in an accounted
    :class:`~repro.api.client.CompletionClient`).  ``k=None`` uses the
    spec's paper default.  ``workers`` fans the test-set prompts across a
    thread pool without changing the predictions; ``retry_policy``
    (a :class:`~repro.api.retry.RetryPolicy`) governs backoff for that
    fan-out; ``trace=True`` attaches per-example
    :class:`~repro.core.tasks.common.ExampleRecord` entries.  The
    returned run always carries a populated
    :class:`~repro.core.manifest.RunManifest` in ``.manifest``.
    """
    from repro.api.client import CompletionClient
    from repro.api.usage import UsageTracker

    run_started = time.perf_counter()
    spec = get_task(task)
    model = _resolve_model(model)
    if isinstance(dataset, str):
        from repro.datasets import load_dataset

        dataset = load_dataset(dataset)
    if k is None:
        k = spec.default_k
    if config is None:
        config = spec.default_config(dataset)
    usage_before = (
        model.usage.snapshot() if isinstance(model, CompletionClient) else None
    )
    phases: dict[str, float] = {}

    phase_started = time.perf_counter()
    demonstrations = select_demonstrations(
        spec, model, dataset, k, config, selection, seed
    )
    phases["selection"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    examples = subsample(spec.examples_of(dataset, split), max_examples)
    prompts = [
        spec.build_prompt(example, demonstrations, config, k)
        for example in examples
    ]
    phases["prompting"] = time.perf_counter() - phase_started

    # The tracker receives one RequestRecord per evaluated example from
    # the executor — retries, failures, and latency for the manifest,
    # and the per-example latency join for trace records.
    tracker = UsageTracker()
    phase_started = time.perf_counter()
    responses = _complete(
        model, prompts, workers, tracker=tracker, retry_policy=retry_policy
    )
    phases["completion"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    predictions = [spec.parse_response(response) for response in responses]
    labels = [spec.label_of(example) for example in examples]
    metric, details = spec.score(predictions, labels, examples)
    phases["scoring"] = time.perf_counter() - phase_started

    records: list[ExampleRecord] = []
    if trace:
        latencies = {
            record.index: record.latency_s for record in tracker.request_log
        }
        records = [
            ExampleRecord(
                index=index,
                prompt=prompt,
                response=response,
                prediction=prediction,
                label=label,
                latency_s=latencies.get(index),
            )
            for index, (prompt, response, prediction, label) in enumerate(
                zip(prompts, responses, predictions, labels)
            )
        ]
    effective_k = len(demonstrations) if spec.supports_selection else k
    manifest = _build_manifest(
        spec, dataset, model,
        k=effective_k, selection=selection, split=split, seed=seed,
        workers=workers, n_examples=len(examples), metric=metric,
        phases=phases, wall_clock_s=time.perf_counter() - run_started,
        tracker=tracker, usage_before=usage_before, config=config,
    )
    return TaskRun(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=effective_k,
        metric_name=spec.metric_name,
        metric=metric,
        n_examples=len(examples),
        predictions=predictions,
        labels=labels,
        details=details,
        records=records,
        manifest=manifest,
    )
