"""The generic task-execution engine.

One pipeline serves all registered tasks: resolve the spec, select
demonstrations, build prompts, fan completions across the batch layer,
parse, score.  The per-task modules reduce to declarative
:class:`~repro.core.tasks.spec.TaskSpec` definitions plus thin wrappers
(``run_entity_matching`` & co.) that delegate here.

Every run is instrumented: phase wall-clock (selection / prompting /
completion / scoring), request outcomes, cache hit rate, and token/cost
totals are assembled into a :class:`~repro.core.manifest.RunManifest`
attached to the returned :class:`~repro.core.tasks.common.TaskRun`.
String model names resolve to a :class:`~repro.api.client.CompletionClient`
(wrapping the simulator) so accounting and the process-default prompt
cache — the CLI's ``--cache PATH`` — apply without any per-task plumbing.

``run_task(..., trace=True)`` additionally attaches one
:class:`~repro.core.tasks.common.ExampleRecord` per evaluated example —
prompt, response, prediction, label and the request latency pulled from
the executor's :class:`~repro.api.usage.UsageTracker` request log.

Resilience (PR 4):

* ``run_task(on_error="quarantine")`` degrades gracefully instead of
  aborting — an example whose completion permanently fails (retries
  exhausted, circuit open) or whose response is malformed/unparseable is
  set aside as a :class:`~repro.core.tasks.common.QuarantineRecord`,
  scoring proceeds over the survivors, and the run reports ``degraded``
  plus a ``coverage`` fraction.
* ``run_task(checkpoint=path)`` journals each completed example to an
  append-only JSONL file (:mod:`repro.core.checkpoint`); re-running the
  same resolved config resumes, skipping journaled examples with zero
  duplicate backend calls.
* ``run_task(fault_plan=...)`` (or a process-default installed by
  ``repro ... --chaos``) attaches a deterministic
  :class:`~repro.api.faults.FaultPlan` to the underlying client, and the
  manifest grows a ``faults`` section with injection tallies.

Service-level resilience (PR 5, see :mod:`repro.api.resilience`):

* ``run_task(deadline=...)`` bounds the run by a wall budget propagated
  into the executor and client; expiry fails fast with
  :class:`~repro.api.retry.DeadlineExceededError` and the manifest
  reports an ``slo`` block.
* ``run_task(hedge=...)`` races backup completions against stragglers
  (first success wins, budgets charged once); the manifest reports a
  ``hedges`` block.
* ``run_task(admission=...)`` (or ``budget=...``, which builds a
  controller) sheds work before it burns budget; shed examples surface
  as ``stage="admission"`` quarantines and a ``shed`` manifest block.
* ``run_task(fallback=...)`` serves would-be quarantined or shed
  examples from cheaper model tiers — the paper's own 175B→6.7B→1.3B
  ladder — restoring ``coverage == 1.0`` with an explicit
  ``served_by_tier`` breakdown.
"""

from __future__ import annotations

import os
import threading
import time

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.manifest import RunManifest, jsonable
from repro.core.tasks.common import (
    ExampleRecord,
    QuarantineRecord,
    TaskRun,
    subsample,
)
from repro.core.tasks.prefix import (
    PromptPrefixCache,
    get_default_prefix_cache,
    prefix_key,
)
from repro.core.tasks.spec import TaskSpec, get_task

# Process-wide error-handling default.  ``repro ... --chaos`` flips this
# to "quarantine" so every evaluation underneath a bench sweep degrades
# gracefully — same ambient-default pattern as workers / cache / faults.
_DEFAULT_ON_ERROR = "raise"
_DEFAULT_ON_ERROR_LOCK = threading.Lock()

# Process-wide checkpoint directory.  ``repro bench --checkpoint-dir``
# sets it; every run_task underneath then journals to an auto-named file
# in that directory, making whole sweeps resumable.
_DEFAULT_CHECKPOINT_DIR: str | None = None
_DEFAULT_CHECKPOINT_DIR_LOCK = threading.Lock()


def set_default_on_error(mode: str) -> None:
    """Set the process-wide ``on_error`` default ("raise"/"quarantine")."""
    global _DEFAULT_ON_ERROR
    if mode not in ("raise", "quarantine"):
        raise ValueError(
            f'on_error must be "raise" or "quarantine", got {mode!r}'
        )
    with _DEFAULT_ON_ERROR_LOCK:
        _DEFAULT_ON_ERROR = mode


def get_default_on_error() -> str:
    with _DEFAULT_ON_ERROR_LOCK:
        return _DEFAULT_ON_ERROR


def set_default_checkpoint_dir(path: str | None) -> None:
    """Install (or with ``None``, clear) the default checkpoint directory."""
    global _DEFAULT_CHECKPOINT_DIR
    with _DEFAULT_CHECKPOINT_DIR_LOCK:
        _DEFAULT_CHECKPOINT_DIR = path


def get_default_checkpoint_dir() -> str | None:
    with _DEFAULT_CHECKPOINT_DIR_LOCK:
        return _DEFAULT_CHECKPOINT_DIR


def _resolve_on_error(on_error: str | None) -> str:
    if on_error is None:
        return get_default_on_error()
    if on_error not in ("raise", "quarantine"):
        raise ValueError(
            f'on_error must be "raise" or "quarantine", got {on_error!r}'
        )
    return on_error


def _complete(
    model,
    prompts: list[str],
    workers: int | None,
    tracker=None,
    retry_policy=None,
    on_error: str = "raise",
    breaker=None,
) -> list:
    """Fan ``prompts`` across an executor; maybe scatter failures.

    In quarantine mode the returned list may contain
    :class:`~repro.api.batch.BatchFailure` placeholders in the slots of
    permanently-failed prompts; callers turn those into quarantines.
    """
    from repro.api.batch import make_executor

    executor = make_executor(
        workers=workers, usage=tracker, policy=retry_policy, breaker=breaker
    )
    map_mode = "return" if on_error == "quarantine" else "raise"
    return executor.map(model.complete, prompts, on_error=map_mode)


def _resolve_model(model, fault_plan=None):
    """Model objects pass through; names become accounted clients.

    A :class:`~repro.api.client.CompletionClient` adds caching (the
    process-default cache if ``--cache`` installed one, else a private
    in-memory one) and usage accounting without changing any completion:
    at temperature 0 the wrapped simulator returns exactly what the bare
    simulator would.  Non-client model *objects* are wrapped only when a
    default cache is installed — a bench module's bare simulator then
    shares the sweep's persistent cache too — or when a fault plan must
    be injected (the plan hooks live on the client).
    """
    from repro.api.cache import get_default_cache
    from repro.api.client import CompletionClient

    if isinstance(model, str):
        return CompletionClient(
            model, cache=get_default_cache(), fault_plan=fault_plan
        )
    if isinstance(model, CompletionClient):
        if fault_plan is not None and model.fault_plan is None:
            model.fault_plan = fault_plan
        return model
    default_cache = get_default_cache()
    if (fault_plan is not None or default_cache is not None) and hasattr(
        model, "complete"
    ):
        return CompletionClient(
            model, cache=default_cache, fault_plan=fault_plan
        )
    return model


def _parse_checked(spec: TaskSpec, response):
    """Parse one response, normalizing malformation into ``ParseError``.

    Quarantine-mode only: responses are validated the way a production
    harness checks body shape before parsing (empty, non-text, garbage
    bytes → typed error, not an ``IndexError`` three frames deep), and a
    parser that still chokes has its untyped exception wrapped.
    """
    from repro.api.faults import malformed_reason
    from repro.api.retry import ParseError

    reason = malformed_reason(response)
    if reason is not None:
        raise ParseError(reason)
    try:
        return spec.parse_response(response)
    except ParseError:
        raise
    except Exception as exc:
        raise ParseError(
            f"parse_response failed with {type(exc).__name__}: {exc}"
        ) from exc


def predict(
    spec: TaskSpec | str,
    model,
    examples,
    demonstrations: list,
    config,
    k: int = 0,
    workers: int | None = None,
    on_error: str | None = None,
) -> list:
    """Predictions for ``examples`` under ``spec`` (order-preserving).

    Under ``on_error="quarantine"`` a permanently-failed or unparseable
    example yields ``None`` in its slot instead of raising; callers
    (validation scorers) drop those slots before scoring.
    """
    from repro.api.batch import BatchFailure
    from repro.api.retry import ParseError

    spec = get_task(spec)
    on_error = _resolve_on_error(on_error)
    if spec.supports_prefix:
        # Build the shared demonstration prefix once for the whole call
        # (no cross-call cache here: validation scoring sweeps many
        # candidate demonstration lists, each used exactly once).
        prefix = spec.build_prefix(demonstrations, config)
        prompts = [
            prefix + spec.build_suffix(example, config) for example in examples
        ]
    else:
        prompts = [
            spec.build_prompt(example, demonstrations, config, k)
            for example in examples
        ]
    responses = _complete(model, prompts, workers, on_error=on_error)
    if on_error != "quarantine":
        return [spec.parse_response(response) for response in responses]
    predictions = []
    for response in responses:
        if isinstance(response, BatchFailure):
            predictions.append(None)
            continue
        try:
            predictions.append(_parse_checked(spec, response))
        except ParseError:
            predictions.append(None)
    return predictions


def make_validation_scorer(
    spec: TaskSpec | str,
    model,
    dataset,
    config,
    max_validation: int | None = None,
    on_error: str | None = None,
):
    """Score a candidate demonstration list on a validation sample.

    The sample and cap come from the spec (error detection enriches its
    sample with positives; the rest take the head of the validation
    split), and the score is the spec's own metric — so manual curation
    optimizes exactly what the task reports.  In quarantine mode,
    examples that failed (``None`` predictions) are dropped from the
    score rather than poisoning the curation signal.
    """
    spec = get_task(spec)
    on_error = _resolve_on_error(on_error)
    if max_validation is None:
        max_validation = spec.max_validation
    validation = spec.validation_examples(dataset, max_validation)
    labels = [spec.label_of(example) for example in validation]

    def evaluate(demonstrations: list) -> float:
        predictions = predict(
            spec, model, validation, demonstrations, config,
            on_error=on_error,
        )
        if on_error == "quarantine":
            kept = [
                (prediction, label, example)
                for prediction, label, example in zip(
                    predictions, labels, validation
                )
                if prediction is not None
            ]
            if not kept:
                return 0.0
            predictions = [item[0] for item in kept]
            kept_labels = [item[1] for item in kept]
            kept_examples = [item[2] for item in kept]
            metric, _details = spec.score(
                predictions, kept_labels, kept_examples
            )
            return metric
        metric, _details = spec.score(predictions, labels, validation)
        return metric

    return evaluate


def select_demonstrations(
    spec: TaskSpec | str,
    model,
    dataset,
    k: int,
    config=None,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
    on_error: str | None = None,
) -> list:
    """Pick ``k`` demonstrations by name ("manual"/"random") or selector."""
    spec = get_task(spec)
    if k <= 0 or not spec.supports_selection:
        return []
    if config is None:
        config = spec.default_config(dataset)
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(
                spec, model, dataset, config, on_error=on_error
            ),
            seed=seed,
            label_of=spec.curation_label_of,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def _selection_name(selection) -> str:
    if isinstance(selection, DemonstrationSelector):
        return type(selection).__name__
    return str(selection)


def _build_manifest(
    spec,
    dataset,
    model,
    *,
    k: int,
    selection,
    split: str,
    seed: int,
    workers: int | None,
    n_examples: int,
    metric: float,
    phases: dict[str, float],
    wall_clock_s: float,
    tracker,
    usage_before,
    config,
    quarantine: list | None = None,
    degraded: bool = False,
    coverage: float = 1.0,
    faults: dict | None = None,
    slo: dict | None = None,
    hedges: dict | None = None,
    shed: dict | None = None,
    served_by_tier: dict | None = None,
    prefix_cache: dict | None = None,
    cascade: dict | None = None,
) -> RunManifest:
    from repro.api.batch import resolve_workers
    from repro.api.client import CompletionClient
    from repro.api.usage import usage_delta

    usage_section: dict[str, dict] = {}
    cache_section = None
    cost_usd = 0.0
    unknown_price = False
    if isinstance(model, CompletionClient) and usage_before is not None:
        delta = usage_delta(usage_before, model.usage.snapshot())
        hits = sum(usage.n_cache_hits for usage in delta.values())
        lookups = sum(usage.n_requests for usage in delta.values())
        for name, usage in sorted(delta.items()):
            usage_section[name] = {
                "n_requests": usage.n_requests,
                "n_cache_hits": usage.n_cache_hits,
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "total_tokens": usage.total_tokens,
                "cost_usd": usage.cost_usd,
                "unknown_price": not usage.known_price,
            }
            cost_usd += usage.cost_usd
            unknown_price = unknown_price or not usage.known_price
        cache_section = {
            "hits": hits,
            "lookups": lookups,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "entries": len(model.cache),
            "backend_calls": model.stats["backend_calls"],
        }

    # A model resolved to a failover equivalence group reports its
    # routing telemetry (FailoverBackend.failover_stats) in the manifest.
    failover_section = None
    backend = getattr(model, "backend", None)
    stats_of = getattr(backend, "failover_stats", None)
    if callable(stats_of):
        failover_section = stats_of()

    return RunManifest(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=k,
        selection=_selection_name(selection),
        split=split,
        seed=seed,
        workers=resolve_workers(workers),
        n_examples=n_examples,
        metric_name=spec.metric_name,
        metric=metric,
        phases=dict(phases),
        wall_clock_s=wall_clock_s,
        requests=tracker.latency_summary(),
        cache=cache_section,
        usage=usage_section,
        cost_usd=cost_usd,
        unknown_price=unknown_price,
        config=jsonable(config),
        quarantine=[record.to_dict() for record in (quarantine or [])],
        degraded=degraded,
        coverage=coverage,
        faults=faults,
        slo=slo,
        hedges=hedges,
        shed=shed,
        served_by_tier=served_by_tier,
        prefix_cache=prefix_cache,
        cascade=cascade,
        failover=failover_section,
    )


def _open_checkpoint(
    checkpoint, spec, dataset, model, *,
    k, selection, split, seed, max_examples, config, fault_plan,
):
    """Resolve the checkpoint path (explicit or ambient) and open it."""
    from repro.core.checkpoint import RunCheckpoint, run_fingerprint

    payload = {
        "task": spec.name,
        "dataset": dataset.name,
        "model": getattr(model, "name", type(model).__name__),
        "k": k,
        "selection": _selection_name(selection),
        "split": split,
        "seed": seed,
        "max_examples": max_examples,
        "config": jsonable(config),
        "faults": fault_plan.describe() if fault_plan is not None else None,
    }
    fingerprint = run_fingerprint(payload)
    if checkpoint is None:
        default_dir = get_default_checkpoint_dir()
        if default_dir is None:
            return None
        checkpoint = os.path.join(
            default_dir,
            f"{spec.name}_{dataset.name}_{fingerprint[:12]}.jsonl",
        )
    return RunCheckpoint(checkpoint, fingerprint, meta=payload)


def _price_per_1k(name: str) -> float | None:
    """USD per 1k tokens for ``name``: registry metadata, then price table."""
    from repro.api.backends import backend_info
    from repro.api.usage import PRICE_PER_1K_TOKENS

    try:
        return backend_info(name).price_per_1k_tokens
    except KeyError:
        return PRICE_PER_1K_TOKENS.get(name)


def _resolve_cascade(cascade):
    """Normalize the ``cascade`` knob into a :class:`CascadePolicy`.

    Accepts the CLI forms — ``True`` (default cheap-tier ladder), a
    comma-separated tier string, a list of tier names — or a ready
    :class:`~repro.api.resilience.CascadePolicy`.
    """
    from repro.api.resilience import CascadePolicy

    if cascade is None or cascade is False:
        return None
    if isinstance(cascade, CascadePolicy):
        return cascade
    if cascade is True:
        return CascadePolicy()
    if isinstance(cascade, str):
        return CascadePolicy.parse(cascade)
    return CascadePolicy(cascade)


def calibrate_cascade_threshold(
    spec: TaskSpec | str,
    policy,
    model,
    dataset,
    config,
    demonstrations: list,
    k: int = 0,
    on_error: str | None = None,
) -> dict:
    """Pick per-tier escalation thresholds that preserve quality.

    Per-task calibration on the validation split, one threshold per
    cheap tier, greedy from the cheapest rung up.  A tier's threshold is
    the smallest candidate whose accepted predictions *never disagree
    with the primary model's own predictions* on validation — fidelity
    to the tier being substituted, not merely metric parity, because a
    cheap tier can match the reference metric on validation while
    flipping a different (and on the test split, costlier) set of
    examples, and on class-imbalanced metrics like EM's F1 even one
    tolerated flip per hundred validation examples compounds into
    multi-point test losses.  Candidates are the observed confidences of
    the examples that reach the tier (each nudged up one ulp, so
    "escalate everything up to and including confidence c" is
    expressible); a tier that still flips at its highest confidence is
    pruned outright (threshold 2.0 — serving then skips its probe
    entirely), which is how a dataset with an untrustworthy 1.3B rung
    can still serve from a trustworthy 6.7B rung.

    As a backstop, the composed cascade's validation metric must stay
    within ``max_quality_loss`` of the *reference* — the primary model's
    validation metric computed by the exact :func:`make_validation_scorer`
    manual curation uses; otherwise every tier is pruned and the cascade
    degenerates to a plain primary-only run (quality and serving cost
    both), never silently below the quality bar.

    Pure given its inputs (temperature-0 completions and confidences are
    pure functions of the prompt), so calibrated runs stay deterministic.
    """
    import math
    import sys

    from repro.api.client import CompletionClient
    from repro.api.retry import ParseError

    spec = get_task(spec)
    on_error = _resolve_on_error(on_error)
    primary_name = getattr(model, "name", type(model).__name__)
    cheap_tiers = [
        index for index in range(len(policy.tiers))
        if policy.tier_name(index) != primary_name
    ]
    # The whole validation split by default: a cheap tier may end up
    # serving most of the traffic, so its zero-disagreement certificate
    # wants every held-out example — not manual curation's small sample.
    max_validation = (
        policy.calibration_examples
        if policy.calibration_examples is not None
        else sys.maxsize
    )
    validation = spec.validation_examples(dataset, max_validation)
    if not validation:
        return {
            "thresholds": [0.0] * len(cheap_tiers),
            "reference_metric": None,
            "validation_metric": None,
        }
    labels = [spec.label_of(example) for example in validation]
    prompts = [
        spec.build_prompt(example, demonstrations, config, k)
        for example in validation
    ]
    scorer = make_validation_scorer(
        spec, model, dataset, config, max_validation=max_validation,
        on_error=on_error,
    )
    reference = scorer(demonstrations)
    top_predictions = predict(
        spec, model, validation, demonstrations, config, k=k,
        on_error=on_error,
    )
    shared_usage = model.usage if isinstance(model, CompletionClient) else None
    shared_cache = model.cache if isinstance(model, CompletionClient) else None
    escalate_all = 2.0  # above any confidence: the tier is pruned

    def metric_of(predictions: list) -> float:
        kept = [
            (prediction, label, example)
            for prediction, label, example in zip(
                predictions, labels, validation
            )
            if prediction is not None
        ]
        if not kept:
            return 0.0
        metric, _details = spec.score(
            [item[0] for item in kept],
            [item[1] for item in kept],
            [item[2] for item in kept],
        )
        return metric

    thresholds: list[float] = []
    composed = list(top_predictions)
    remaining = list(range(len(validation)))
    for tier_index in cheap_tiers:
        if not remaining:
            thresholds.append(escalate_all)
            continue
        client = policy.resolve(
            tier_index, usage=shared_usage, cache=shared_cache
        )
        scored: dict[int, tuple[object, float]] = {}
        for position in remaining:
            completion = client.complete_verbose(prompts[position])
            try:
                parsed = _parse_checked(spec, completion.text)
            except ParseError:
                parsed = None  # the serving path escalates these too
            scored[position] = (parsed, completion.confidence)

        def accepted_at(threshold: float) -> list[int]:
            return [
                position for position in remaining
                if scored[position][0] is not None
                and not policy.should_escalate(
                    prompts[position], scored[position][1], threshold
                )
            ]

        # The escalation floor: one ulp above the tier's most confident
        # disagreement, then pushed halfway toward certainty.  The
        # *disagreement rate* at a given confidence transfers from
        # validation to test; the direction of any one disagreement
        # (tier right, primary wrong — or the reverse) is sampling luck,
        # so tolerating "helpful" flips would launder coin flips into
        # the certificate — and stopping one ulp above the worst flip
        # would accept the test flips sitting just past it, so the
        # guard demands the tier be at least half again closer to
        # certain than it ever was while wrong.
        flip_confidences = [
            scored[position][1] for position in remaining
            if scored[position][0] is not None
            and scored[position][0] != top_predictions[position]
        ]
        floor = 0.0
        if flip_confidences:
            worst = max(flip_confidences)
            floor = math.nextafter(worst + 0.5 * (1.0 - worst), 2.0)
        candidates = sorted(
            {
                math.nextafter(confidence, 2.0)
                for _parsed, confidence in scored.values()
            }
        )
        chosen = escalate_all
        for candidate in [floor, *candidates]:
            if candidate < floor:
                continue
            accepted = accepted_at(candidate)
            flips = sum(
                1 for position in accepted
                if scored[position][0] != top_predictions[position]
            )
            # Zero flips over a non-empty accepted set; an empty
            # accepted set is no certificate at all — such a threshold
            # would extrapolate to confidences the split never
            # exhibited.
            if accepted and flips == 0:
                chosen = candidate
                break
        thresholds.append(chosen)
        accepted = accepted_at(chosen)
        for position in accepted:
            composed[position] = scored[position][0]
        taken = set(accepted)
        remaining = [
            position for position in remaining if position not in taken
        ]

    validation_metric = metric_of(composed)
    if validation_metric < reference - policy.max_quality_loss:
        thresholds = [escalate_all] * len(thresholds)
        validation_metric = metric_of(list(top_predictions))
    return {
        "thresholds": thresholds,
        "reference_metric": reference,
        "validation_metric": validation_metric,
    }


def _serve_cascade(
    policy,
    thresholds,
    spec,
    model,
    prompts: list[str],
    pending: list[int],
    *,
    executor,
    workers,
    tracker,
    retry_policy,
    breaker,
    deadline,
    admission,
    priority,
    budget,
    on_error: str,
    quarantine: dict,
    suffixes: list[str] | None = None,
    prefix_tokens: int | None = None,
):
    """Serve ``pending`` prompts cheapest-tier-first with escalation.

    Tier 0 is the primary fan-out (it owns the run's request tracker —
    record indices are positions in ``pending``, which the trace latency
    join relies on — and the admission plan); escalation rounds run on
    fresh executors.  ``thresholds`` is either a single escalation
    threshold shared by every cheap tier or a per-tier sequence aligned
    with the cheap tiers (what calibration produces).  A non-final tier
    keeps an example only when its confidence clears its threshold
    *and* its text parses — otherwise
    the example escalates, so a cheap tier can never inject garbage the
    calibration didn't price in.  The primary model is always the final
    authority: its failures quarantine (or raise) exactly like a
    non-cascade run's.

    When the run uses the split prefix + suffix prompt path,
    ``suffixes``/``prefix_tokens`` carry the PR 6 accounting hints: each
    tier models a separate deployment with its own prefix KV cache, so
    the shared demonstration prefix is charged once per *tier touched*
    and every request is otherwise billed for its suffix alone.

    Returns ``(responses_by_index, cascade_section)``; the caller adds
    the cost fields from usage deltas.
    """
    from repro.api.batch import BatchFailure, make_executor
    from repro.api.client import CompletionClient
    from repro.api.retry import ParseError
    from repro.api.usage import count_tokens

    primary_name = getattr(model, "name", type(model).__name__)
    shared_usage = model.usage if isinstance(model, CompletionClient) else None
    shared_cache = model.cache if isinstance(model, CompletionClient) else None
    chain = [
        (
            policy.tier_name(index),
            policy.resolve(index, usage=shared_usage, cache=shared_cache),
        )
        for index in range(len(policy.tiers))
        if policy.tier_name(index) != primary_name
    ]
    chain.append((primary_name, model))
    if isinstance(thresholds, (int, float)):
        thresholds = [float(thresholds)] * (len(chain) - 1)
    thresholds = list(thresholds)
    if len(thresholds) != len(chain) - 1:
        raise ValueError(
            f"expected {len(chain) - 1} cascade thresholds, "
            f"got {len(thresholds)}"
        )
    responses: dict[int, str] = {}
    served_by: dict[str, int] = {}
    backend_calls: dict[str, int] = {}
    escalated: set[int] = set()
    current = list(pending)
    for depth, (tier_label, tier_model) in enumerate(chain):
        served_by.setdefault(tier_label, 0)
        backend_calls.setdefault(tier_label, 0)
        if not current:
            continue
        final = depth == len(chain) - 1
        if not final and thresholds[depth] - policy.spread / 2.0 > 1.0:
            # Pruned tier (calibration found it untrustworthy): no
            # confidence can clear its threshold, so skip the probe
            # instead of paying for calls that can never be accepted.
            escalated.update(current)
            continue
        calls_before = (
            tier_model.stats["backend_calls"]
            if isinstance(tier_model, CompletionClient)
            else None
        )
        if depth == 0:
            tier_executor = make_executor(
                executor, workers=workers, usage=tracker, policy=retry_policy,
                breaker=breaker, budget=budget, deadline=deadline,
                admission=admission, priority=priority,
            )
        else:
            tier_executor = make_executor(
                executor, workers=workers, policy=retry_policy,
                breaker=breaker, deadline=deadline,
            )

        hinted = suffixes is not None and isinstance(
            tier_model, CompletionClient
        )

        def serve(index: int, tier=tier_model, verbose=not final,
                  hinted=hinted):
            hint = count_tokens(suffixes[index]) if hinted else None
            if verbose:
                if hint is not None:
                    return tier.complete_verbose(
                        prompts[index], prompt_tokens=hint
                    )
                return tier.complete_verbose(prompts[index])
            if hint is not None:
                return tier.complete(prompts[index], prompt_tokens=hint)
            return tier.complete(prompts[index])

        armed = hinted and prefix_tokens is not None
        if armed:
            tier_model.begin_prompt_prefix(prefix_tokens)
        try:
            outcomes = tier_executor.map(serve, current, on_error="return")
        finally:
            if armed:
                tier_model.end_prompt_prefix()
        next_round: list[int] = []
        for position, outcome in enumerate(outcomes):
            index = current[position]
            if isinstance(outcome, BatchFailure):
                shed = outcome.error_type == "Shed"
                if not shed and not final:
                    # A cheap tier's terminal failure is just an
                    # escalation: the pricier tier is the retry.
                    escalated.add(index)
                    next_round.append(index)
                    continue
                if on_error != "quarantine":
                    raise outcome.error
                quarantine[index] = QuarantineRecord(
                    index=index,
                    error_type=outcome.error_type,
                    error=str(outcome.error),
                    attempts=outcome.attempts,
                    stage="admission" if shed else "completion",
                )
                continue
            if final:
                responses[index] = outcome
                served_by[tier_label] += 1
                continue
            accept = not policy.should_escalate(
                prompts[index], outcome.confidence, thresholds[depth]
            )
            if accept:
                try:
                    _parse_checked(spec, outcome.text)
                except ParseError:
                    accept = False
            if accept:
                responses[index] = outcome.text
                served_by[tier_label] += 1
            else:
                escalated.add(index)
                next_round.append(index)
        if calls_before is not None:
            backend_calls[tier_label] = (
                tier_model.stats["backend_calls"] - calls_before
            )
        current = next_round
    section = {
        "tiers": [label for label, _tier in chain],
        "threshold": policy.threshold,
        "thresholds": thresholds,
        "served_by_tier": served_by,
        "escalated": len(escalated),
        "escalation_rate": (len(escalated) / len(pending)) if pending else 0.0,
        "backend_calls_by_tier": backend_calls,
    }
    return responses, section


def _resolve_resilience(deadline, hedge, fallback, admission, budget, breaker):
    """Normalize the service-level knobs into resilience objects.

    Accepts the ergonomic forms the CLI produces — a float deadline in
    seconds, ``hedge=True`` or a float hedge delay, a comma-separated
    fallback string — as well as ready-made objects.  When a shared
    budget (or a breaker worth consulting) is given without an explicit
    controller, an :class:`~repro.api.resilience.AdmissionController` is
    built so shedding engages by default.
    """
    from repro.api.resilience import (
        AdmissionController,
        Deadline,
        FallbackChain,
        HedgePolicy,
    )

    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline(float(deadline))
    if hedge is False:
        hedge = None
    if hedge is not None and not isinstance(hedge, HedgePolicy):
        hedge = HedgePolicy() if hedge is True else HedgePolicy(
            delay_s=float(hedge)
        )
    if fallback is not None and not isinstance(fallback, FallbackChain):
        if isinstance(fallback, str):
            fallback = FallbackChain.parse(fallback)
        else:
            fallback = FallbackChain(fallback)
    if admission is None and budget is not None:
        admission = AdmissionController(budget=budget, breaker=breaker)
    return deadline, hedge, fallback, admission


def run_task(
    task: str | TaskSpec,
    model,
    dataset,
    k: int | None = None,
    selection: str | DemonstrationSelector = "manual",
    config=None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
    retry_policy=None,
    on_error: str | None = None,
    checkpoint=None,
    fault_plan=None,
    breaker=None,
    deadline=None,
    hedge=None,
    admission=None,
    priority: str = "bench",
    fallback=None,
    budget=None,
    executor: str | None = None,
    prefix_cache=None,
    cascade=None,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` under the named task's spec.

    ``model`` is anything with a ``complete(prompt) -> str`` method, or a
    model name resolved through the simulator (wrapped in an accounted
    :class:`~repro.api.client.CompletionClient`).  ``k=None`` uses the
    spec's paper default.  ``workers`` fans the test-set prompts across a
    thread pool without changing the predictions; ``retry_policy``
    (a :class:`~repro.api.retry.RetryPolicy`) governs backoff for that
    fan-out; ``trace=True`` attaches per-example
    :class:`~repro.core.tasks.common.ExampleRecord` entries.  The
    returned run always carries a populated
    :class:`~repro.core.manifest.RunManifest` in ``.manifest``.

    Resilience knobs (``None`` inherits the process-wide defaults the
    CLI's chaos flags install):

    * ``on_error="quarantine"`` — permanently-failed or unparseable
      examples are quarantined instead of aborting the run; the metric
      is computed over the survivors and the run reports ``degraded``
      plus ``coverage``.
    * ``checkpoint=path`` — journal per-example completions to an
      append-only JSONL file and resume from it on re-invocation (zero
      duplicate backend calls for journaled examples).
    * ``fault_plan`` — a :class:`~repro.api.faults.FaultPlan` attached
      to the underlying client for deterministic fault injection.
    * ``breaker`` — a :class:`~repro.api.batch.CircuitBreaker` guarding
      the completion fan-out.

    Service-level knobs (consulted deadline → hedge → shed → degrade;
    see DESIGN §4b-iv):

    * ``deadline`` — seconds (or a ready
      :class:`~repro.api.resilience.Deadline`) of wall budget for the
      run; expiry is fatal (fail fast, typed
      :class:`~repro.api.retry.DeadlineExceededError`).
    * ``hedge`` — ``True`` (default policy), a float hedge delay in
      seconds, or a ready :class:`~repro.api.resilience.HedgePolicy`:
      straggling completions get one backup attempt, first success
      wins, budgets/usage charged once.
    * ``admission`` / ``budget`` / ``priority`` — an
      :class:`~repro.api.resilience.AdmissionController` (built
      automatically from a :class:`~repro.api.batch.SharedBudget` when
      only ``budget`` is given) sheds work *before* it burns budget;
      shed examples quarantine with ``stage="admission"`` under
      ``on_error="quarantine"``.
    * ``fallback`` — tier names (``"gpt3-6.7b,gpt3-1.3b"``, a list, or a
      ready :class:`~repro.api.resilience.FallbackChain`): quarantined
      or shed examples are re-served by cheaper tiers before scoring,
      restoring coverage with a ``served_by_tier`` breakdown.

    Serving knobs (PR 6):

    * ``executor`` — ``"thread"`` (the PR 1 pool) or ``"async"`` (the
      continuous-batching :class:`~repro.api.abatch.AsyncBatchExecutor`);
      ``None`` inherits the process default (the CLI's ``--executor``).
      Predictions, quarantines, and manifests are byte-identical through
      either path.
    * ``prefix_cache`` — ``False`` disables the demonstration-prefix
      cache, a ready :class:`~repro.core.tasks.prefix.PromptPrefixCache`
      replaces the process default.  When active (the default for tasks
      whose prompts split), the shared prefix is built and tokenized
      once per run, the manifest grows a ``prefix_cache`` block, and
      prefix tokens are charged once per run (see
      :meth:`~repro.api.client.CompletionClient.begin_prompt_prefix`).

    Cost-aware serving (PR 7):

    * ``cascade`` — ``True`` (default cheap-tier ladder), tier names
      (``"gpt3-1.3b,gpt3-6.7b"``, a list), or a ready
      :class:`~repro.api.resilience.CascadePolicy`: every example is
      served by the cheapest tier first and only low-confidence
      predictions escalate toward the primary model (always the final
      authority).  ``--cascade-threshold``/``CascadePolicy(threshold=)``
      pins the escalation bar; ``None`` calibrates it per task on the
      validation split (see :func:`calibrate_cascade_threshold`).  The
      manifest grows a ``cascade`` block (per-tier served counts,
      escalation rate, estimated cost vs. primary-only) and results are
      byte-identical at any worker count through either executor.
      Mutually exclusive with ``checkpoint`` (a journaled response does
      not record which tier produced it).
    """
    from repro.api.batch import BatchFailure, make_executor
    from repro.api.client import CompletionClient
    from repro.api.faults import get_default_fault_plan
    from repro.api.retry import ParseError
    from repro.api.usage import UsageTracker, count_tokens

    run_started = time.perf_counter()
    spec = get_task(task)
    on_error = _resolve_on_error(on_error)
    if fault_plan is None:
        fault_plan = get_default_fault_plan()
    model = _resolve_model(model, fault_plan=fault_plan)
    if fault_plan is None:
        # A client handed in with its own plan attached still gets full
        # fault accounting in the manifest.
        fault_plan = getattr(model, "fault_plan", None)
    deadline, hedge, fallback, admission = _resolve_resilience(
        deadline, hedge, fallback, admission, budget, breaker
    )
    cascade = _resolve_cascade(cascade)
    if cascade is not None and checkpoint is not None:
        raise ValueError(
            "cascade serving does not support checkpoint resume: a "
            "journaled response does not record which tier produced it"
        )
    if isinstance(model, CompletionClient):
        # The client is where hedging can uphold its dedup invariants
        # (under the cache and single-flight lock) and where a deadline
        # catches stragglers between executor attempts.
        if hedge is not None:
            model.hedge_policy = hedge
        if deadline is not None:
            model.deadline = deadline
    if isinstance(dataset, str):
        from repro.datasets import load_dataset

        dataset = load_dataset(dataset)
    if k is None:
        k = spec.default_k
    if config is None:
        config = spec.default_config(dataset)
    usage_before = (
        model.usage.snapshot() if isinstance(model, CompletionClient) else None
    )
    fault_stats_before = fault_plan.stats() if fault_plan is not None else {}
    phases: dict[str, float] = {}

    phase_started = time.perf_counter()
    demonstrations = select_demonstrations(
        spec, model, dataset, k, config, selection, seed, on_error=on_error
    )
    phases["selection"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    examples = subsample(spec.examples_of(dataset, split), max_examples)
    prefix_obj = None
    prefix_was_cached = False
    suffixes: list[str] | None = None
    if prefix_cache is not False and spec.supports_prefix:
        cache_obj = (
            prefix_cache
            if isinstance(prefix_cache, PromptPrefixCache)
            else get_default_prefix_cache()
        )
        key = prefix_key(
            spec.name, k, seed, config,
            dataset=dataset.name,
            selection=_selection_name(selection),
            demonstrations=demonstrations,
        )
        prefix_obj, prefix_was_cached = cache_obj.get_or_build(
            key, lambda: spec.build_prefix(demonstrations, config)
        )
        suffixes = [spec.build_suffix(example, config) for example in examples]
        prompts = [prefix_obj.text + suffix for suffix in suffixes]
    else:
        prompts = [
            spec.build_prompt(example, demonstrations, config, k)
            for example in examples
        ]
    phases["prompting"] = time.perf_counter() - phase_started

    # Cascade runs never journal — not even under an ambient default
    # checkpoint directory — because resume could not attribute a
    # journaled response to its serving tier.
    journal = None
    if cascade is None:
        journal = _open_checkpoint(
            checkpoint, spec, dataset, model,
            k=k, selection=selection, split=split, seed=seed,
            max_examples=max_examples, config=config, fault_plan=fault_plan,
        )

    # The tracker receives one RequestRecord per evaluated example from
    # the executor — retries, failures, and latency for the manifest,
    # and the per-example latency join for trace records.
    tracker = UsageTracker()
    phase_started = time.perf_counter()
    quarantine: dict[int, QuarantineRecord] = {}
    responses: list = [None] * len(prompts)
    pending: list[int] = []
    for index, prompt in enumerate(prompts):
        journaled = (
            journal.response_for(index, prompt) if journal is not None else None
        )
        if journaled is not None:
            responses[index] = journaled
            continue
        prior = journal.quarantined.get(index) if journal is not None else None
        if prior is not None and on_error == "quarantine":
            # A previous attempt already exhausted this example's
            # retries; honor the journaled verdict instead of re-failing.
            quarantine[index] = QuarantineRecord(
                index=index,
                error_type=str(prior.get("error_type", "Exception")),
                error=str(prior.get("error", "")),
                attempts=int(prior.get("attempts", 1)),
                stage="completion",
            )
            continue
        pending.append(index)

    # Per-task threshold calibration happens before the serving clock
    # starts (its own phase) so the cascade's cost telemetry measures
    # serving alone.
    cascade_thresholds = cascade.threshold if cascade is not None else None
    cascade_calibration = None
    if cascade is not None and cascade_thresholds is None and pending:
        calibration_started = time.perf_counter()
        cascade_calibration = calibrate_cascade_threshold(
            spec, cascade, model, dataset, config, demonstrations, k=k,
            on_error=on_error,
        )
        cascade_thresholds = cascade_calibration["thresholds"]
        phases["calibration"] = time.perf_counter() - calibration_started
        phase_started = time.perf_counter()

    # Prefix-aware accounting: arm the one-shot prefix charge on the
    # client and pass per-example suffix counts so the shared prefix is
    # tokenized (and charged) once per run instead of once per request.
    # Cascade serving manages its own arming — each tier models a
    # separate deployment with its own prefix KV cache, so the charge is
    # armed once per *tier* inside ``_serve_cascade`` instead of here.
    hint_client = (
        model
        if isinstance(model, CompletionClient) and cascade is None
        else None
    )
    if prefix_obj is not None and hint_client is not None:
        hint_client.begin_prompt_prefix(prefix_obj.n_tokens)

    def complete_one(index: int) -> str:
        if suffixes is not None and hint_client is not None:
            response = hint_client.complete(
                prompts[index], prompt_tokens=count_tokens(suffixes[index])
            )
        else:
            response = model.complete(prompts[index])
        if journal is not None:
            journal.record_example(index, prompts[index], response)
        return response

    cascade_section = None
    usage_before_serving = (
        model.usage.snapshot() if isinstance(model, CompletionClient) else None
    )
    if pending and cascade is not None:
        served, cascade_section = _serve_cascade(
            cascade, cascade_thresholds, spec, model, prompts, pending,
            executor=executor, workers=workers, tracker=tracker,
            retry_policy=retry_policy, breaker=breaker, deadline=deadline,
            admission=admission, priority=priority, budget=budget,
            on_error=on_error, quarantine=quarantine,
            suffixes=suffixes,
            prefix_tokens=(
                prefix_obj.n_tokens if prefix_obj is not None else None
            ),
        )
        for index, text in served.items():
            responses[index] = text
        cascade_section["calibrated"] = cascade_calibration is not None
        if cascade_calibration is not None:
            cascade_section["reference_metric"] = (
                cascade_calibration["reference_metric"]
            )
            cascade_section["validation_metric"] = (
                cascade_calibration["validation_metric"]
            )
    elif pending:
        batch_executor = make_executor(
            executor, workers=workers, usage=tracker, policy=retry_policy,
            breaker=breaker, budget=budget, deadline=deadline,
            admission=admission, priority=priority,
        )
        outcomes = batch_executor.map(
            complete_one,
            pending,
            on_error="return" if on_error == "quarantine" else "raise",
        )
        for position, outcome in enumerate(outcomes):
            index = pending[position]
            if isinstance(outcome, BatchFailure):
                shed = outcome.error_type == "Shed"
                quarantine[index] = QuarantineRecord(
                    index=index,
                    error_type=outcome.error_type,
                    error=str(outcome.error),
                    attempts=outcome.attempts,
                    stage="admission" if shed else "completion",
                )
                if journal is not None and not shed:
                    # Shedding is a capacity decision about *this* run,
                    # not a verdict about the example — journaling it
                    # would wrongly skip the example on resume.
                    journal.record_quarantine(
                        index,
                        outcome.error_type,
                        str(outcome.error),
                        outcome.attempts,
                    )
            else:
                responses[index] = outcome
    if prefix_obj is not None and hint_client is not None:
        # Disarm so an unclaimed charge (fully cache-warm run) cannot
        # leak into the next run sharing this client.
        hint_client.end_prompt_prefix()
    if cascade_section is not None:
        # Cost telemetry: actual serving spend (usage delta across the
        # tier clients, which share the primary tracker) vs. what the
        # primary tier alone would have been estimated to charge for the
        # same prompts and final responses.
        from repro.api.usage import usage_delta

        est_cost = 0.0
        if usage_before_serving is not None:
            serving_delta = usage_delta(
                usage_before_serving, model.usage.snapshot()
            )
            est_cost = sum(
                usage.cost_usd for usage in serving_delta.values()
            )
        top_rate = _price_per_1k(getattr(model, "name", ""))
        baseline = 0.0
        if top_rate is not None:
            served_any = False
            for index in pending:
                if responses[index] is None:
                    continue
                served_any = True
                prompt_cost_tokens = (
                    count_tokens(suffixes[index])
                    if suffixes is not None
                    else count_tokens(prompts[index])
                )
                baseline += (
                    prompt_cost_tokens + count_tokens(responses[index])
                ) * top_rate / 1000.0
            if served_any and suffixes is not None and prefix_obj is not None:
                # The primary-only baseline would also charge the shared
                # demonstration prefix exactly once (PR 6 semantics).
                baseline += prefix_obj.n_tokens * top_rate / 1000.0
        cascade_section["est_cost_usd"] = est_cost
        cascade_section["est_baseline_cost_usd"] = baseline
        cascade_section["est_savings_rate"] = (
            (1.0 - est_cost / baseline) if baseline > 0 else 0.0
        )
    phases["completion"] = time.perf_counter() - phase_started

    phase_started = time.perf_counter()
    predictions: list = [None] * len(prompts)
    for index, response in enumerate(responses):
        if index in quarantine:
            continue
        if on_error == "quarantine":
            try:
                predictions[index] = _parse_checked(spec, response)
            except ParseError as exc:
                quarantine[index] = QuarantineRecord(
                    index=index,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    attempts=1,
                    stage="parse",
                )
        else:
            predictions[index] = spec.parse_response(response)
    parse_elapsed_s = time.perf_counter() - phase_started

    # Graceful degradation: walk the fallback ladder for every example
    # that would otherwise score as a hole (quarantined or shed).  Tier
    # responses are parsed through the same checked path; an example a
    # tier cannot serve carries to the next one.  Fallback completions
    # are deliberately *not* journaled to the checkpoint — a resumed run
    # should retry the primary first, not bake in a degraded answer.
    served_by_tier: dict[str, int] | None = None
    n_failed_primary = len(quarantine)
    if fallback is not None:
        phase_started = time.perf_counter()
        failed = sorted(quarantine)
        tier_usage = (
            model.usage if isinstance(model, CompletionClient) else None
        )
        tier_counts: dict[str, int] = {}
        for tier_index in range(len(fallback.tiers)):
            tier_label = fallback.tier_name(tier_index)
            tier_counts.setdefault(tier_label, 0)
            if not failed:
                continue
            tier_model = fallback.resolve(tier_index, usage=tier_usage)
            # A fresh executor, usage=None: tier requests must not enter
            # ``tracker``'s request log, whose indices are positions in
            # ``pending`` (the trace latency join relies on that).
            tier_executor = make_executor(executor, workers=workers)
            outcomes = tier_executor.map(
                lambda index: tier_model.complete(prompts[index]),
                failed,
                on_error="return",
            )
            still_failed: list[int] = []
            for position, outcome in enumerate(outcomes):
                index = failed[position]
                if isinstance(outcome, BatchFailure):
                    still_failed.append(index)
                    continue
                try:
                    prediction = _parse_checked(spec, outcome)
                except ParseError:
                    still_failed.append(index)
                    continue
                responses[index] = outcome
                predictions[index] = prediction
                del quarantine[index]
                tier_counts[tier_label] += 1
            failed = still_failed
        if cascade_section is not None:
            # Under a cascade the per-tier serving split is already
            # known; fold the fallback rescues into it instead of
            # crediting every non-quarantined example to the primary.
            served_by_tier = dict(cascade_section["served_by_tier"])
        else:
            primary_name = getattr(model, "name", type(model).__name__)
            served_by_tier = {primary_name: len(examples) - n_failed_primary}
        for name, count in tier_counts.items():
            served_by_tier[name] = served_by_tier.get(name, 0) + count
        phases["fallback"] = time.perf_counter() - phase_started
    elif cascade_section is not None:
        served_by_tier = dict(cascade_section["served_by_tier"])

    phase_started = time.perf_counter()
    labels = [spec.label_of(example) for example in examples]
    survivors = [
        index for index in range(len(examples)) if index not in quarantine
    ]
    if quarantine:
        metric, details = spec.score(
            [predictions[index] for index in survivors],
            [labels[index] for index in survivors],
            [examples[index] for index in survivors],
        )
    else:
        metric, details = spec.score(predictions, labels, examples)
    coverage = (len(survivors) / len(examples)) if examples else 1.0
    # A run the fallback ladder fully rescued still reports degraded:
    # coverage is 1.0 but some answers came from a cheaper tier.
    degraded = bool(quarantine) or n_failed_primary > 0
    phases["scoring"] = parse_elapsed_s + (time.perf_counter() - phase_started)

    if journal is not None:
        journal.close()

    records: list[ExampleRecord] = []
    if trace:
        # Executor indices are positions in ``pending``; map them back
        # to example indices for the latency join.
        latencies = {
            pending[record.index]: record.latency_s
            for record in tracker.request_log
            if record.index < len(pending)
        }
        records = [
            ExampleRecord(
                index=index,
                prompt=prompt,
                response=response,
                prediction=prediction,
                label=label,
                latency_s=latencies.get(index),
            )
            for index, (prompt, response, prediction, label) in enumerate(
                zip(prompts, responses, predictions, labels)
            )
        ]

    faults_section = None
    if fault_plan is not None:
        fault_stats_after = fault_plan.stats()
        injected = {
            kind: count - fault_stats_before.get(kind, 0)
            for kind, count in fault_stats_after.items()
            if count - fault_stats_before.get(kind, 0)
        }
        faults_section = dict(fault_plan.describe())
        faults_section["injected"] = injected
        if breaker is not None:
            faults_section["breaker"] = breaker.stats()

    prefix_section = None
    if prefix_obj is not None:
        # Per-run view: every example consulted the cached prefix; the
        # build (if any) is the single miss.  ``tokens_saved`` is the
        # token-counting work the cache avoided versus per-example
        # full-prompt counting.
        n_lookups = len(examples)
        misses = 0 if prefix_was_cached else min(1, n_lookups)
        hits = max(0, n_lookups - misses)
        prefix_section = {
            "hits": hits,
            "misses": misses,
            "prefix_tokens": prefix_obj.n_tokens,
            "tokens_saved": prefix_obj.n_tokens * hits,
        }

    quarantine_records = [quarantine[index] for index in sorted(quarantine)]
    effective_k = len(demonstrations) if spec.supports_selection else k
    manifest = _build_manifest(
        spec, dataset, model,
        k=effective_k, selection=selection, split=split, seed=seed,
        workers=workers, n_examples=len(examples), metric=metric,
        phases=phases, wall_clock_s=time.perf_counter() - run_started,
        tracker=tracker, usage_before=usage_before, config=config,
        quarantine=quarantine_records, degraded=degraded,
        coverage=coverage, faults=faults_section,
        slo=deadline.describe() if deadline is not None else None,
        hedges=hedge.stats() if hedge is not None else None,
        shed=admission.stats() if admission is not None else None,
        served_by_tier=served_by_tier,
        prefix_cache=prefix_section,
        cascade=cascade_section,
    )
    return TaskRun(
        task=spec.name,
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=effective_k,
        metric_name=spec.metric_name,
        metric=metric,
        n_examples=len(examples),
        predictions=predictions,
        labels=labels,
        details=details,
        records=records,
        quarantine=quarantine_records,
        degraded=degraded,
        coverage=coverage,
        served_by_tier=served_by_tier,
        manifest=manifest,
    )


class ServingContext:
    """Everything a gateway needs to serve one compatible request group.

    A group is pinned by (task, dataset, model, k, selection, seed,
    config): the demonstrations and the shared prompt prefix are
    resolved **once**, exactly the way :func:`run_task` resolves them,
    and then reused for every micro-batch routed through
    :func:`serve_group`.  That reuse is the determinism guarantee — at
    temperature 0 a completion is a pure function of its prompt, and
    the prompt here is byte-identical to the offline path's
    ``prefix + suffix`` (or ``build_prompt``) for the same example.
    """

    __slots__ = (
        "spec", "dataset", "model", "k", "selection", "seed", "config",
        "demonstrations", "prefix",
    )

    def __init__(self, spec, dataset, model, k, selection, seed, config,
                 demonstrations, prefix):
        self.spec = spec
        self.dataset = dataset
        self.model = model
        self.k = k
        self.selection = selection
        self.seed = seed
        self.config = config
        self.demonstrations = demonstrations
        self.prefix = prefix

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", type(self.model).__name__)


class ServedItem:
    """Outcome slot for one example served through :func:`serve_group`."""

    __slots__ = ("index", "ok", "prediction", "response", "error_type",
                 "error", "attempts")

    def __init__(self, index, ok, prediction=None, response=None,
                 error_type=None, error=None, attempts=0):
        self.index = index
        self.ok = ok
        self.prediction = prediction
        self.response = response
        self.error_type = error_type
        self.error = error
        self.attempts = attempts


def resolve_serving_context(
    task: str | TaskSpec,
    model,
    dataset,
    k: int | None = None,
    selection: str | DemonstrationSelector = "random",
    seed: int = 0,
    config=None,
    prefix_cache=None,
) -> ServingContext:
    """Resolve the per-group state a gateway caches between requests.

    Mirrors the head of :func:`run_task` exactly: same model
    resolution, same ``default_k``/``default_config`` fallbacks, same
    demonstration selection, and the same
    :func:`~repro.core.tasks.prefix.prefix_key` lookup — so a gateway
    group and an offline run over the same knobs build the same
    prompts byte for byte.
    """
    spec = get_task(task)
    model = _resolve_model(model)
    if isinstance(dataset, str):
        from repro.datasets import load_dataset

        dataset = load_dataset(dataset)
    if k is None:
        k = spec.default_k
    if config is None:
        config = spec.default_config(dataset)
    demonstrations = select_demonstrations(
        spec, model, dataset, k, config, selection, seed
    )
    prefix_obj = None
    if prefix_cache is not False and spec.supports_prefix:
        cache_obj = (
            prefix_cache
            if isinstance(prefix_cache, PromptPrefixCache)
            else get_default_prefix_cache()
        )
        key = prefix_key(
            spec.name, k, seed, config,
            dataset=dataset.name,
            selection=_selection_name(selection),
            demonstrations=demonstrations,
        )
        prefix_obj, _was_cached = cache_obj.get_or_build(
            key, lambda: spec.build_prefix(demonstrations, config)
        )
    return ServingContext(
        spec=spec, dataset=dataset, model=model, k=k,
        selection=_selection_name(selection), seed=seed, config=config,
        demonstrations=demonstrations, prefix=prefix_obj,
    )


def serve_group(
    context: ServingContext,
    examples,
    workers: int | None = None,
    executor: str | None = None,
    tracker=None,
    retry_policy=None,
    breaker=None,
    deadline=None,
    admission=None,
    priority: str = "interactive",
    budget=None,
) -> list[ServedItem]:
    """Serve one micro-batch of ``examples`` under a resolved context.

    The gateway's engine entry: prompts are built exactly as
    :func:`run_task` builds them (shared prefix + per-example suffix
    when the task supports splitting), fanned through the same
    ``make_executor`` facade with the same admission/priority/deadline
    knobs, and parsed through the same checked parser.  Failures never
    raise — every example gets a :class:`ServedItem` slot, typed with
    the executor's error classification (``Shed``, retry exhaustion,
    parse errors), so a multi-tenant caller can answer each request
    individually.
    """
    from repro.api.batch import BatchFailure, make_executor
    from repro.api.client import CompletionClient
    from repro.api.retry import ParseError
    from repro.api.usage import count_tokens

    spec = context.spec
    examples = list(examples)
    if not examples:
        return []
    suffixes: list[str] | None = None
    if context.prefix is not None:
        suffixes = [
            spec.build_suffix(example, context.config) for example in examples
        ]
        prompts = [context.prefix.text + suffix for suffix in suffixes]
    else:
        prompts = [
            spec.build_prompt(
                example, context.demonstrations, context.config, context.k
            )
            for example in examples
        ]

    model = context.model
    hint_client = model if isinstance(model, CompletionClient) else None
    if context.prefix is not None and hint_client is not None:
        hint_client.begin_prompt_prefix(context.prefix.n_tokens)

    def complete_one(index: int) -> str:
        if suffixes is not None and hint_client is not None:
            return hint_client.complete(
                prompts[index], prompt_tokens=count_tokens(suffixes[index])
            )
        return model.complete(prompts[index])

    batch_executor = make_executor(
        executor, workers=workers, usage=tracker, policy=retry_policy,
        breaker=breaker, budget=budget, deadline=deadline,
        admission=admission, priority=priority,
    )
    try:
        outcomes = batch_executor.map(
            complete_one, range(len(prompts)), on_error="return"
        )
    finally:
        if context.prefix is not None and hint_client is not None:
            hint_client.end_prompt_prefix()

    items: list[ServedItem] = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, BatchFailure):
            items.append(ServedItem(
                index=index, ok=False,
                error_type=outcome.error_type,
                error=str(outcome.error),
                attempts=outcome.attempts,
            ))
            continue
        try:
            prediction = _parse_checked(spec, outcome)
        except ParseError as exc:
            items.append(ServedItem(
                index=index, ok=False, response=outcome,
                error_type=type(exc).__name__, error=str(exc), attempts=1,
            ))
            continue
        items.append(ServedItem(
            index=index, ok=True, prediction=prediction, response=outcome,
        ))
    return items
