"""Declarative task specifications and the ``TASKS`` registry.

The paper's thesis is "one foundation model, many wrangling tasks"; this
module is that thesis as code.  Everything task-specific about entity
matching, error detection, imputation, schema matching and transformation
is captured in one frozen :class:`TaskSpec` — how to build a prompt, how
to parse the completion, where the label lives, how to score — and the
generic engine (:mod:`repro.core.tasks.engine`) runs any spec through the
identical select-demonstrations → prompt → complete → parse → score
pipeline.

Adding a sixth task is one file: define a ``TaskSpec`` and call
:func:`register`.  Every layer above — the :class:`~repro.core.Wrangler`
verbs, ``repro.bench.runners.evaluate_fm``, the ``python -m repro run``
command — picks it up for free.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field


def _default_examples_of(dataset, split: str) -> list:
    """Default evaluation-example accessor: the dataset's named split."""
    return dataset.split(split)


def _default_validation_examples(dataset, max_validation: int) -> list:
    """Default validation sample: head of the validation split."""
    valid = dataset.valid
    if max_validation >= len(valid):
        return list(valid)
    return list(valid[:max_validation])


@dataclass(frozen=True)
class TaskSpec:
    """Everything the generic engine needs to run one wrangling task.

    Callable fields (the task's "verbs"):

    * ``build_prompt(example, demonstrations, config, k) -> str`` — turn
      one typed example plus demonstrations into the full prompt text.
      ``k`` is only consulted by tasks whose demonstrations ride on the
      example itself (transformation cases); the others take them from
      the ``demonstrations`` list.
    * ``parse_response(text) -> prediction`` — interpret the completion.
    * ``label_of(example) -> label`` — the ground truth of one example.
    * ``score(predictions, labels, examples) -> (metric, details)`` — the
      task metric plus any extra detail columns (precision/recall,
      per-case accuracies).
    * ``default_config(dataset | None) -> config | None`` — the paper's
      default prompt configuration; ``None`` dataset means "no dataset in
      sight" (the :class:`~repro.core.Wrangler` ad-hoc path).
    * ``examples_of(dataset, split) -> list`` — the evaluation examples.
    * ``validation_examples(dataset, max_validation) -> list`` — the
      sample that guides manual demonstration curation.
    * ``curation_label_of`` — label accessor handed to the selectors for
      class balancing, or ``None`` for free-text tasks.
    """

    name: str
    metric_name: str
    default_k: int
    build_prompt: Callable[..., str]
    parse_response: Callable[[str], object]
    label_of: Callable[[object], object]
    score: Callable[..., tuple[float, dict]]
    default_config: Callable[[object], object]
    #: Optional split form of ``build_prompt`` used by the prefix cache:
    #: ``build_prefix(demonstrations, config) -> str`` builds the shared
    #: instruction + demonstration prefix (trailing separator included) and
    #: ``build_suffix(example, config) -> str`` builds the per-example query
    #: block, with the invariant ``build_prompt(example, demos, config, k)
    #: == build_prefix(demos, config) + build_suffix(example, config)``
    #: byte for byte.  Tasks without the split (transformation, whose
    #: demonstrations ride on each case) leave both ``None`` and the engine
    #: falls back to per-example ``build_prompt``.
    build_prefix: Callable[..., str] | None = None
    build_suffix: Callable[..., str] | None = None
    examples_of: Callable[..., list] = _default_examples_of
    validation_examples: Callable[..., list] = _default_validation_examples
    curation_label_of: Callable[[object], bool] | None = None
    #: Whether train-split demonstration selection applies (False for
    #: transformation, whose demonstrations are part of each case).
    supports_selection: bool = True
    #: Validation-sample cap used by the manual curator's scorer.
    max_validation: int = 48
    aliases: tuple[str, ...] = ()
    description: str = ""

    @property
    def supports_prefix(self) -> bool:
        """Whether prompts split into a cacheable prefix + query suffix."""
        return self.build_prefix is not None and self.build_suffix is not None

    def describe(self) -> str:
        return f"{self.name} ({self.metric_name}, default k={self.default_k})"


#: name → spec for every registered wrangling task (aliases included).
TASKS: dict[str, TaskSpec] = {}

#: Canonical (non-alias) registration order, for stable listings.
_CANONICAL: list[str] = []


def register(spec: TaskSpec) -> TaskSpec:
    """Add ``spec`` to the registry (idempotent per name; dup names fail)."""
    for key in (spec.name, *spec.aliases):
        existing = TASKS.get(key)
        if existing is not None and existing.name != spec.name:
            raise ValueError(
                f"task name {key!r} already registered by {existing.name!r}"
            )
        TASKS[key] = spec
    if spec.name not in _CANONICAL:
        _CANONICAL.append(spec.name)
    return spec


def get_task(task: str | TaskSpec) -> TaskSpec:
    """Resolve a task name (or alias, or spec) to its :class:`TaskSpec`."""
    if isinstance(task, TaskSpec):
        return task
    try:
        return TASKS[task]
    except KeyError:
        known = ", ".join(available_tasks())
        raise KeyError(f"unknown task {task!r}; known: {known}") from None


def available_tasks() -> list[str]:
    """Canonical task names, in registration order."""
    return list(_CANONICAL)
