"""Error detection as a declarative :class:`TaskSpec`."""

from __future__ import annotations

from functools import partial

from repro.core.demonstrations import DemonstrationSelector
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    ErrorDetectionPromptConfig,
    build_error_detection_prefix,
    build_error_detection_prompt,
    error_detection_block,
)
from repro.core.tasks import engine
from repro.core.tasks.common import TaskRun, parse_yes_no
from repro.core.tasks.spec import TaskSpec, register
from repro.datasets.base import ErrorDetectionDataset


def _binary_score(predictions, labels, _examples):
    metrics = binary_metrics(predictions, labels)
    return metrics.f1, {"precision": metrics.precision, "recall": metrics.recall}


def _enriched_validation(dataset: ErrorDetectionDataset, max_validation: int) -> list:
    """Error-enriched validation sample for curation scoring.

    With a ~5% positive rate a uniform sample of 40 cells might contain
    one error, which is not enough signal to steer curation (a human
    doing error analysis would look at the errors, too).
    """
    positives = [example for example in dataset.valid if example.label]
    negatives = [example for example in dataset.valid if not example.label]
    n_pos = min(len(positives), max_validation // 3)
    return positives[:n_pos] + negatives[: max_validation - n_pos]


SPEC = register(TaskSpec(
    name="error_detection",
    metric_name="f1",
    default_k=10,
    build_prompt=lambda example, demos, config, _k: build_error_detection_prompt(
        example, demos, config
    ),
    build_prefix=build_error_detection_prefix,
    build_suffix=lambda example, config: error_detection_block(
        example, config or ErrorDetectionPromptConfig(), include_answer=False
    ),
    parse_response=parse_yes_no,
    label_of=lambda example: example.label,
    score=_binary_score,
    default_config=lambda _dataset=None: ErrorDetectionPromptConfig(),
    validation_examples=_enriched_validation,
    curation_label_of=lambda example: example.label,
    max_validation=40,
    aliases=("ed",),
    description="Is the value of one cell erroneous? (Yes/No)",
))

select_demonstrations = partial(engine.select_demonstrations, SPEC)
make_validation_scorer = partial(engine.make_validation_scorer, SPEC)


def run_error_detection(
    model,
    dataset: ErrorDetectionDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: ErrorDetectionPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Evaluate ``model`` on cell-level error detection (engine wrapper)."""
    return engine.run_task(
        SPEC, model, dataset, k=k, selection=selection, config=config,
        max_examples=max_examples, split=split, seed=seed, workers=workers,
        trace=trace,
    )
