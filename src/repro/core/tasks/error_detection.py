"""Error detection as a prompting task."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    ErrorDetectionPromptConfig,
    build_error_detection_prompt,
)
from repro.core.tasks.common import (
    TaskRun,
    complete_prompts,
    parse_yes_no,
    subsample,
)
from repro.datasets.base import ErrorDetectionDataset, ErrorExample


def _predict(
    model,
    examples: Sequence[ErrorExample],
    demonstrations: list[ErrorExample],
    config: ErrorDetectionPromptConfig,
    workers: int | None = None,
) -> list[bool]:
    prompts = [
        build_error_detection_prompt(example, demonstrations, config)
        for example in examples
    ]
    responses = complete_prompts(model, prompts, workers=workers)
    return [parse_yes_no(response) for response in responses]


def make_validation_scorer(
    model,
    dataset: ErrorDetectionDataset,
    config: ErrorDetectionPromptConfig,
    max_validation: int = 40,
):
    """Score candidate demonstrations by validation F1.

    The validation sample is error-enriched: with a ~5% positive rate a
    uniform sample of 40 cells might contain one error, which is not
    enough signal to steer curation (a human doing error analysis would
    look at the errors, too).
    """
    positives = [example for example in dataset.valid if example.label]
    negatives = [example for example in dataset.valid if not example.label]
    n_pos = min(len(positives), max_validation // 3)
    validation = positives[:n_pos] + negatives[: max_validation - n_pos]
    labels = [example.label for example in validation]

    def evaluate(demonstrations: list[ErrorExample]) -> float:
        predictions = _predict(model, validation, demonstrations, config)
        return binary_metrics(predictions, labels).f1

    return evaluate


def select_demonstrations(
    model,
    dataset: ErrorDetectionDataset,
    k: int,
    config: ErrorDetectionPromptConfig,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list[ErrorExample]:
    if k <= 0:
        return []
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(model, dataset, config),
            seed=seed,
            label_of=lambda example: example.label,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def run_error_detection(
    model,
    dataset: ErrorDetectionDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: ErrorDetectionPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
) -> TaskRun:
    """Evaluate ``model`` on cell-level error detection."""
    config = config or ErrorDetectionPromptConfig()
    demonstrations = select_demonstrations(model, dataset, k, config, selection, seed)
    examples = subsample(dataset.split(split), max_examples)
    predictions = _predict(model, examples, demonstrations, config, workers=workers)
    labels = [example.label for example in examples]
    metrics = binary_metrics(predictions, labels)
    return TaskRun(
        task="error_detection",
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=len(demonstrations),
        metric_name="f1",
        metric=metrics.f1,
        n_examples=len(examples),
        predictions=predictions,
        labels=labels,
        details={"precision": metrics.precision, "recall": metrics.recall},
    )
