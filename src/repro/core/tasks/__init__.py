"""Task layer: declarative specs + one generic engine.

Each task module defines a frozen :class:`~repro.core.tasks.spec.TaskSpec`
(prompt builder, response parser, label accessor, metric, defaults) and
registers it in :data:`~repro.core.tasks.spec.TASKS`; the generic engine
(:func:`run_task`, :func:`select_demonstrations`,
:func:`make_validation_scorer`) runs any spec through the identical
pipeline.  The per-task ``run_*`` functions are thin wrappers kept for
call-site compatibility.
"""

from repro.core.tasks import engine, spec
from repro.core.tasks.common import (
    ExampleRecord,
    QuarantineRecord,
    TaskRun,
    parse_yes_no,
)
from repro.core.tasks.engine import (
    ServedItem,
    ServingContext,
    get_default_checkpoint_dir,
    get_default_on_error,
    make_validation_scorer,
    predict,
    resolve_serving_context,
    run_task,
    select_demonstrations,
    serve_group,
    set_default_checkpoint_dir,
    set_default_on_error,
)
from repro.core.tasks.prefix import (
    PromptPrefix,
    PromptPrefixCache,
    get_default_prefix_cache,
    prefix_key,
    set_default_prefix_cache,
)
from repro.core.tasks.spec import TASKS, TaskSpec, available_tasks, get_task

# Importing the task modules registers their specs.
from repro.core.tasks.entity_matching import run_entity_matching
from repro.core.tasks.error_detection import run_error_detection
from repro.core.tasks.imputation import run_imputation
from repro.core.tasks.schema_matching import run_schema_matching
from repro.core.tasks.transformation import run_transformation

__all__ = [
    "ExampleRecord",
    "QuarantineRecord",
    "ServedItem",
    "ServingContext",
    "TASKS",
    "TaskRun",
    "TaskSpec",
    "available_tasks",
    "PromptPrefix",
    "PromptPrefixCache",
    "get_default_checkpoint_dir",
    "get_default_on_error",
    "get_default_prefix_cache",
    "get_task",
    "make_validation_scorer",
    "parse_yes_no",
    "predict",
    "prefix_key",
    "resolve_serving_context",
    "serve_group",
    "set_default_prefix_cache",
    "run_entity_matching",
    "run_error_detection",
    "run_imputation",
    "run_schema_matching",
    "run_task",
    "run_transformation",
    "select_demonstrations",
    "set_default_checkpoint_dir",
    "set_default_on_error",
]
