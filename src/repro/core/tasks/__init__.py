"""Task runners: dataset + model + prompt config → predictions + metric."""

from repro.core.tasks.common import TaskRun, parse_yes_no
from repro.core.tasks.entity_matching import run_entity_matching
from repro.core.tasks.error_detection import run_error_detection
from repro.core.tasks.imputation import run_imputation
from repro.core.tasks.schema_matching import run_schema_matching
from repro.core.tasks.transformation import run_transformation

__all__ = [
    "TaskRun",
    "parse_yes_no",
    "run_entity_matching",
    "run_error_detection",
    "run_imputation",
    "run_schema_matching",
    "run_transformation",
]
