"""Data imputation as a declarative :class:`TaskSpec`."""

from __future__ import annotations

from functools import partial

from repro.core.demonstrations import DemonstrationSelector
from repro.core.metrics import accuracy
from repro.core.prompts import (
    ImputationPromptConfig,
    build_imputation_prefix,
    build_imputation_prompt,
    imputation_block,
)
from repro.core.tasks import engine
from repro.core.tasks.common import TaskRun
from repro.core.tasks.spec import TaskSpec, register
from repro.datasets.base import ImputationDataset


SPEC = register(TaskSpec(
    name="imputation",
    metric_name="accuracy",
    default_k=10,
    build_prompt=lambda example, demos, config, _k: build_imputation_prompt(
        example, demos, config
    ),
    build_prefix=build_imputation_prefix,
    build_suffix=lambda example, config: imputation_block(
        example, config or ImputationPromptConfig(), include_answer=False
    ),
    parse_response=str.strip,
    label_of=lambda example: example.answer,
    score=lambda predictions, answers, _examples: (
        accuracy(predictions, answers), {}
    ),
    default_config=lambda _dataset=None: ImputationPromptConfig(),
    curation_label_of=None,
    max_validation=48,
    aliases=("di",),
    description="Fill the missing value of one attribute (free text).",
))

select_demonstrations = partial(engine.select_demonstrations, SPEC)
make_validation_scorer = partial(engine.make_validation_scorer, SPEC)


def run_imputation(
    model,
    dataset: ImputationDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: ImputationPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Evaluate ``model`` on missing-value imputation (engine wrapper)."""
    return engine.run_task(
        SPEC, model, dataset, k=k, selection=selection, config=config,
        max_examples=max_examples, split=split, seed=seed, workers=workers,
        trace=trace,
    )
