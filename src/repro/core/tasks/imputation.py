"""Data imputation as a prompting task."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.metrics import accuracy
from repro.core.prompts import ImputationPromptConfig, build_imputation_prompt
from repro.core.tasks.common import TaskRun, complete_prompts, subsample
from repro.datasets.base import ImputationDataset, ImputationExample


def _predict(
    model,
    examples: Sequence[ImputationExample],
    demonstrations: list[ImputationExample],
    config: ImputationPromptConfig,
    workers: int | None = None,
) -> list[str]:
    prompts = [
        build_imputation_prompt(example, demonstrations, config)
        for example in examples
    ]
    responses = complete_prompts(model, prompts, workers=workers)
    return [response.strip() for response in responses]


def make_validation_scorer(
    model,
    dataset: ImputationDataset,
    config: ImputationPromptConfig,
    max_validation: int = 48,
):
    validation = subsample(dataset.valid, max_validation)
    answers = [example.answer for example in validation]

    def evaluate(demonstrations: list[ImputationExample]) -> float:
        predictions = _predict(model, validation, demonstrations, config)
        return accuracy(predictions, answers)

    return evaluate


def select_demonstrations(
    model,
    dataset: ImputationDataset,
    k: int,
    config: ImputationPromptConfig,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list[ImputationExample]:
    if k <= 0:
        return []
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(model, dataset, config),
            seed=seed,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def run_imputation(
    model,
    dataset: ImputationDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: ImputationPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
) -> TaskRun:
    """Evaluate ``model`` on missing-value imputation (accuracy)."""
    config = config or ImputationPromptConfig()
    demonstrations = select_demonstrations(model, dataset, k, config, selection, seed)
    examples = subsample(dataset.split(split), max_examples)
    predictions = _predict(model, examples, demonstrations, config, workers=workers)
    answers = [example.answer for example in examples]
    return TaskRun(
        task="imputation",
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=len(demonstrations),
        metric_name="accuracy",
        metric=accuracy(predictions, answers),
        n_examples=len(examples),
        predictions=predictions,
        labels=answers,
    )
