"""Cached demonstration prefixes for the prompt pipeline.

The paper's prompts are dominated by the k-shot demonstration block, and
within one run that block is byte-identical across every example — only
the trailing query block changes.  :class:`PromptPrefixCache` stores the
built-and-tokenized prefix keyed on the run identity that determines it
(task, dataset, k, seed, selection, prompt config), so the engine builds,
serializes, and token-counts the demonstrations once per run instead of
once per example.

The contract with :mod:`repro.core.prompts` is byte identity::

    build_prompt(example, demos, config, k)
        == build_prefix(demos, config) + build_suffix(example, config)

so predictions through the split path are bit-for-bit the same as
through per-example ``build_prompt``.  The prefix carries its trailing
block separator (whitespace), which also makes
:func:`repro.api.usage.count_tokens` additive across the split.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass

from repro.api.usage import count_tokens
from repro.core.manifest import jsonable


@dataclass(frozen=True)
class PromptPrefix:
    """One built demonstration prefix plus its token count."""

    text: str
    n_tokens: int

    @classmethod
    def from_text(cls, text: str) -> "PromptPrefix":
        return cls(text=text, n_tokens=count_tokens(text))


def prefix_key(
    task: str,
    k: int,
    seed: int,
    config: object = None,
    dataset: str | None = None,
    selection: str | None = None,
    demonstrations: list | None = None,
) -> str:
    """Stable digest of everything that determines a run's prefix.

    The issue's identity is (task, k, seed, config); ``dataset`` and
    ``selection`` ride along because they pick *which* demonstrations the
    seed resolves to, and the resolved ``demonstrations`` themselves are
    folded in so a custom selector object (whose name alone does not pin
    its parameters) can never alias another run's prefix.  The key is
    therefore a pure function of the prefix's actual inputs.
    """
    payload = json.dumps(
        {
            "task": task,
            "dataset": dataset,
            "k": k,
            "seed": seed,
            "selection": selection,
            "config": jsonable(config),
            "demonstrations": jsonable(demonstrations),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class PromptPrefixCache:
    """Process-wide cache of demonstration prefixes.

    Thread-safe via a single lock; entries are full prefix strings, so
    the cache is capped (FIFO eviction) to keep a long sweep from
    accumulating every prefix it ever built.  ``hits``/``misses`` count
    ``get`` outcomes across the cache's lifetime; per-run tallies (the
    manifest's ``prefix_cache`` block) are kept by the engine.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[str, PromptPrefix] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> PromptPrefix | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, prefix: PromptPrefix) -> PromptPrefix:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = prefix
            return prefix

    def get_or_build(self, key: str, build) -> tuple[PromptPrefix, bool]:
        """Return ``(prefix, was_cached)``, building via ``build()`` on miss.

        ``build`` runs outside the lock — prefix construction is pure, so
        a racing duplicate build is wasted work, not a correctness issue.
        """
        cached = self.get(key)
        if cached is not None:
            return cached, True
        built = PromptPrefix.from_text(build())
        return self.put(key, built), False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


# Process-wide default prefix cache, mirroring the default prompt cache
# in :mod:`repro.api.cache`: the CLI flips it off with
# ``--no-prefix-cache``; everything underneath shares one instance.
_DEFAULT_PREFIX_CACHE = PromptPrefixCache()
_DEFAULT_PREFIX_CACHE_LOCK = threading.Lock()


def set_default_prefix_cache(cache: PromptPrefixCache | None) -> None:
    """Install (or with ``None``, reset to a fresh) default prefix cache."""
    global _DEFAULT_PREFIX_CACHE
    with _DEFAULT_PREFIX_CACHE_LOCK:
        _DEFAULT_PREFIX_CACHE = cache if cache is not None else PromptPrefixCache()


def get_default_prefix_cache() -> PromptPrefixCache:
    with _DEFAULT_PREFIX_CACHE_LOCK:
        return _DEFAULT_PREFIX_CACHE
