"""Schema matching as a declarative :class:`TaskSpec`."""

from __future__ import annotations

from functools import partial

from repro.core.demonstrations import DemonstrationSelector
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    SchemaMatchingPromptConfig,
    build_schema_matching_prefix,
    build_schema_matching_prompt,
    schema_matching_block,
)
from repro.core.tasks import engine
from repro.core.tasks.common import TaskRun, parse_yes_no
from repro.core.tasks.spec import TaskSpec, register
from repro.datasets.base import SchemaMatchingDataset


def _binary_score(predictions, labels, _examples):
    metrics = binary_metrics(predictions, labels)
    return metrics.f1, {"precision": metrics.precision, "recall": metrics.recall}


SPEC = register(TaskSpec(
    name="schema_matching",
    metric_name="f1",
    default_k=3,
    build_prompt=lambda pair, demos, config, _k: build_schema_matching_prompt(
        pair, demos, config
    ),
    build_prefix=build_schema_matching_prefix,
    build_suffix=lambda pair, config: schema_matching_block(
        pair, config or SchemaMatchingPromptConfig(), include_answer=False
    ),
    parse_response=parse_yes_no,
    label_of=lambda pair: pair.label,
    score=_binary_score,
    default_config=lambda _dataset=None: SchemaMatchingPromptConfig(),
    curation_label_of=lambda pair: pair.label,
    max_validation=48,
    aliases=("sm",),
    description="Do two schema attributes describe the same concept? (Yes/No)",
))

select_demonstrations = partial(engine.select_demonstrations, SPEC)
make_validation_scorer = partial(engine.make_validation_scorer, SPEC)


def run_schema_matching(
    model,
    dataset: SchemaMatchingDataset,
    k: int = 3,
    selection: str | DemonstrationSelector = "manual",
    config: SchemaMatchingPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Evaluate ``model`` on attribute-correspondence prediction (engine wrapper)."""
    return engine.run_task(
        SPEC, model, dataset, k=k, selection=selection, config=config,
        max_examples=max_examples, split=split, seed=seed, workers=workers,
        trace=trace,
    )
