"""Schema matching as a prompting task."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    SchemaMatchingPromptConfig,
    build_schema_matching_prompt,
)
from repro.core.tasks.common import (
    TaskRun,
    complete_prompts,
    parse_yes_no,
    subsample,
)
from repro.datasets.base import SchemaMatchingDataset, SchemaPair


def _predict(
    model,
    pairs: Sequence[SchemaPair],
    demonstrations: list[SchemaPair],
    config: SchemaMatchingPromptConfig,
    workers: int | None = None,
) -> list[bool]:
    prompts = [
        build_schema_matching_prompt(pair, demonstrations, config)
        for pair in pairs
    ]
    responses = complete_prompts(model, prompts, workers=workers)
    return [parse_yes_no(response) for response in responses]


def make_validation_scorer(
    model,
    dataset: SchemaMatchingDataset,
    config: SchemaMatchingPromptConfig,
    max_validation: int = 48,
):
    validation = subsample(dataset.valid, max_validation)
    labels = [pair.label for pair in validation]

    def evaluate(demonstrations: list[SchemaPair]) -> float:
        predictions = _predict(model, validation, demonstrations, config)
        return binary_metrics(predictions, labels).f1

    return evaluate


def select_demonstrations(
    model,
    dataset: SchemaMatchingDataset,
    k: int,
    config: SchemaMatchingPromptConfig,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list[SchemaPair]:
    if k <= 0:
        return []
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(model, dataset, config),
            seed=seed,
            label_of=lambda pair: pair.label,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def run_schema_matching(
    model,
    dataset: SchemaMatchingDataset,
    k: int = 3,
    selection: str | DemonstrationSelector = "manual",
    config: SchemaMatchingPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
) -> TaskRun:
    """Evaluate ``model`` on attribute-correspondence prediction (F1)."""
    config = config or SchemaMatchingPromptConfig()
    demonstrations = select_demonstrations(model, dataset, k, config, selection, seed)
    pairs = subsample(dataset.split(split), max_examples)
    predictions = _predict(model, pairs, demonstrations, config, workers=workers)
    labels = [pair.label for pair in pairs]
    metrics = binary_metrics(predictions, labels)
    return TaskRun(
        task="schema_matching",
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=len(demonstrations),
        metric_name="f1",
        metric=metrics.f1,
        n_examples=len(pairs),
        predictions=predictions,
        labels=labels,
        details={"precision": metrics.precision, "recall": metrics.recall},
    )
