"""Data transformation as a prompting task."""

from __future__ import annotations

from repro.core.metrics import normalize_answer
from repro.core.prompts import (
    TransformationPromptConfig,
    build_transformation_prompt,
)
from repro.core.tasks.common import TaskRun, complete_prompts
from repro.datasets.base import TransformationCase, TransformationDataset


def run_transformation_case(
    model,
    case: TransformationCase,
    k: int = 3,
    workers: int | None = None,
) -> tuple[int, int, list[str]]:
    """(hits, total, predictions) for one case with ``k`` demonstrations.

    Zero-shot (k=0) prompts carry the case's natural-language instruction
    instead of examples — the user telling the model what they want.
    """
    demonstrations = list(case.examples[:k])
    instruction = case.instruction if k == 0 else None
    config = TransformationPromptConfig(instruction=instruction)
    prompts = [
        build_transformation_prompt(source, demonstrations, config)
        for source, _target in case.tests
    ]
    predictions = [
        response.strip()
        for response in complete_prompts(model, prompts, workers=workers)
    ]
    hits = sum(
        1
        for prediction, (_source, target) in zip(predictions, case.tests)
        if normalize_answer(prediction) == normalize_answer(target)
    )
    return hits, len(case.tests), predictions


def run_transformation(
    model,
    dataset: TransformationDataset,
    k: int = 3,
    workers: int | None = None,
) -> TaskRun:
    """Micro-averaged exact-match accuracy over all cases' test pairs."""
    total_hits = 0
    total = 0
    per_case: dict[str, float] = {}
    for case in dataset.cases:
        hits, n, _predictions = run_transformation_case(
            model, case, k, workers=workers
        )
        total_hits += hits
        total += n
        per_case[case.name] = hits / n if n else 0.0
    return TaskRun(
        task="transformation",
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=k,
        metric_name="accuracy",
        metric=total_hits / total if total else 0.0,
        n_examples=total,
        details={"per_case": per_case},
    )
