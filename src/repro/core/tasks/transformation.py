"""Data transformation as a declarative :class:`TaskSpec`.

Transformation differs from the other four tasks in where its
demonstrations live: each :class:`TransformationCase` carries its own
example pairs, and zero-shot prompts fall back to the case's
natural-language instruction.  The spec flattens every case's held-out
tests into :class:`TransformQuery` records so the generic engine can
treat them exactly like any other example stream; ``supports_selection``
is off because there is no train split to select from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import normalize_answer
from repro.core.prompts import (
    TransformationPromptConfig,
    build_transformation_prompt,
)
from repro.core.tasks import engine
from repro.core.tasks.common import TaskRun, complete_prompts
from repro.core.tasks.spec import TaskSpec, register
from repro.datasets.base import TransformationCase, TransformationDataset


@dataclass(frozen=True)
class TransformQuery:
    """One held-out test pair, flattened out of its case.

    ``examples`` and ``instruction`` are the case's own demonstration
    pool and zero-shot description, carried along so the prompt builder
    needs nothing beyond the query itself.
    """

    source: str
    target: str
    examples: tuple[tuple[str, str], ...]
    instruction: str
    case_name: str


def _queries_of(dataset: TransformationDataset, split: str = "test") -> list[TransformQuery]:
    """Every case's tests, flattened in case order (the only split)."""
    return [
        TransformQuery(
            source=source,
            target=target,
            examples=case.examples,
            instruction=case.instruction,
            case_name=case.name,
        )
        for case in dataset.cases
        for source, target in case.tests
    ]


def _build_prompt(
    query: TransformQuery,
    demonstrations: list,
    config: TransformationPromptConfig | None,
    k: int,
) -> str:
    """Prompt for one query.

    With an explicit ``config`` (the :class:`~repro.core.Wrangler` ad-hoc
    path) the caller controls demonstrations and instruction directly;
    otherwise the engine path applies the paper's recipe — the case's
    first ``k`` example pairs, or its instruction when ``k=0``.
    """
    if config is not None:
        return build_transformation_prompt(
            query.source, list(demonstrations), config
        )
    demos = list(query.examples[:k])
    instruction = query.instruction if k == 0 else None
    return build_transformation_prompt(
        query.source, demos, TransformationPromptConfig(instruction=instruction)
    )


def _score(predictions, targets, queries):
    """Micro-averaged exact match, plus per-case accuracies."""
    hits: dict[str, int] = {}
    totals: dict[str, int] = {}
    total_hits = 0
    for prediction, target, query in zip(predictions, targets, queries):
        totals[query.case_name] = totals.get(query.case_name, 0) + 1
        hits.setdefault(query.case_name, 0)
        if normalize_answer(prediction) == normalize_answer(target):
            hits[query.case_name] += 1
            total_hits += 1
    per_case = {
        name: hits[name] / totals[name] if totals[name] else 0.0
        for name in totals
    }
    metric = total_hits / len(predictions) if predictions else 0.0
    return metric, {"per_case": per_case}


SPEC = register(TaskSpec(
    name="transformation",
    metric_name="accuracy",
    default_k=3,
    build_prompt=_build_prompt,
    parse_response=str.strip,
    label_of=lambda query: query.target,
    score=_score,
    default_config=lambda _dataset=None: None,
    examples_of=_queries_of,
    supports_selection=False,
    aliases=("dt",),
    description="Rewrite a value by example (few-shot) or instruction (zero-shot).",
))


def run_transformation_case(
    model,
    case: TransformationCase,
    k: int = 3,
    workers: int | None = None,
) -> tuple[int, int, list[str]]:
    """(hits, total, predictions) for one case with ``k`` demonstrations.

    Zero-shot (k=0) prompts carry the case's natural-language instruction
    instead of examples — the user telling the model what they want.
    """
    queries = [
        TransformQuery(
            source=source, target=target, examples=case.examples,
            instruction=case.instruction, case_name=case.name,
        )
        for source, target in case.tests
    ]
    prompts = [_build_prompt(query, [], None, k) for query in queries]
    predictions = [
        response.strip()
        for response in complete_prompts(model, prompts, workers=workers)
    ]
    hits = sum(
        1
        for prediction, query in zip(predictions, queries)
        if normalize_answer(prediction) == normalize_answer(query.target)
    )
    return hits, len(case.tests), predictions


def run_transformation(
    model,
    dataset: TransformationDataset,
    k: int = 3,
    workers: int | None = None,
    max_examples: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Micro-averaged exact-match accuracy over all cases' test pairs."""
    return engine.run_task(
        SPEC, model, dataset, k=k, workers=workers, max_examples=max_examples,
        trace=trace,
    )
