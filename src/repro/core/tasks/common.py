"""Shared plumbing for the task runners."""

from __future__ import annotations

from dataclasses import dataclass, field


def parse_yes_no(response: str) -> bool:
    """Interpret a generated answer as a binary label.

    Per the paper's footnote 1: if the model does not produce a Yes/No
    answer, default to "No".
    """
    text = response.strip().casefold()
    if text.startswith("yes"):
        return True
    return False


@dataclass(frozen=True)
class ExampleRecord:
    """Per-example trace of one evaluated prompt (``run_task(trace=True)``).

    ``latency_s`` comes from the batch executor's request log; ``None``
    when the request was not individually timed.
    """

    index: int
    prompt: str
    response: str
    prediction: object
    label: object
    latency_s: float | None = None


@dataclass(frozen=True)
class QuarantineRecord:
    """One example set aside by ``run_task(on_error="quarantine")``.

    ``stage`` says where the example died: ``"completion"`` (transient
    retries exhausted, budget, circuit open), ``"parse"`` (the response
    came back but was malformed/unparseable), or ``"admission"`` (shed by
    admission control before any backend call).  Quarantined examples get
    a ``None`` prediction and are excluded from scoring; the run's
    ``coverage`` is the surviving fraction.  A configured
    :class:`~repro.api.resilience.FallbackChain` rescues quarantined
    examples through cheaper tiers before scoring, removing them from
    quarantine entirely.
    """

    index: int
    error_type: str
    error: str
    attempts: int = 1
    stage: str = "completion"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "stage": self.stage,
        }


@dataclass
class TaskRun:
    """The outcome of evaluating one (model, dataset, configuration)."""

    task: str
    dataset: str
    model: str
    k: int
    metric_name: str
    metric: float
    n_examples: int
    predictions: list = field(default_factory=list)
    labels: list = field(default_factory=list)
    details: dict = field(default_factory=dict)
    #: Optional per-example traces (see :class:`ExampleRecord`).
    records: list = field(default_factory=list)
    #: Examples set aside under ``on_error="quarantine"`` (see
    #: :class:`QuarantineRecord`); empty for clean runs.
    quarantine: list = field(default_factory=list)
    #: True when any example was quarantined — the metric was computed
    #: over a strict subset of the evaluation set.
    degraded: bool = False
    #: Fraction of examples that survived to scoring (1.0 when clean).
    coverage: float = 1.0
    #: Graceful-degradation breakdown (tier name -> examples served,
    #: primary first) when a fallback chain was configured; else ``None``.
    served_by_tier: dict | None = None
    #: Run telemetry (see :class:`repro.core.manifest.RunManifest`);
    #: always attached by the engine, ``None`` only for hand-built runs.
    manifest: object | None = None

    def describe(self) -> str:
        if self.degraded and self.coverage >= 1.0 and self.served_by_tier:
            # Fallback tiers rescued every would-be hole: full coverage,
            # but the caller should still see the run was not pristine.
            degraded = " [degraded: served by fallback tiers]"
        elif self.degraded:
            degraded = f" [degraded, coverage={100 * self.coverage:.0f}%]"
        else:
            degraded = ""
        return (
            f"{self.task}/{self.dataset} {self.model} (k={self.k}): "
            f"{self.metric_name}={100 * self.metric:.1f}{degraded}"
        )


def subsample(items: list, limit: int | None) -> list:
    """Deterministic head-of-list cap (the paper caps ablations at 200)."""
    if limit is None or limit >= len(items):
        return list(items)
    return list(items[:limit])


def complete_prompts(
    model, prompts: list[str], workers: int | None = None
) -> list[str]:
    """Order-preserving completion of a prompt batch (serial or fanned).

    ``workers=None`` uses the process-wide default (1 unless the CLI's
    ``--workers`` raised it), so runners stay serial-by-default and every
    per-example loop gains concurrency from one switch.  At temperature 0
    the outputs are identical regardless of worker count.
    """
    from repro.api.batch import complete_all

    return complete_all(model, prompts, workers=workers)
