"""Shared plumbing for the task runners."""

from __future__ import annotations

from dataclasses import dataclass, field


def parse_yes_no(response: str) -> bool:
    """Interpret a generated answer as a binary label.

    Per the paper's footnote 1: if the model does not produce a Yes/No
    answer, default to "No".
    """
    text = response.strip().casefold()
    if text.startswith("yes"):
        return True
    return False


@dataclass(frozen=True)
class ExampleRecord:
    """Per-example trace of one evaluated prompt (``run_task(trace=True)``).

    ``latency_s`` comes from the batch executor's request log; ``None``
    when the request was not individually timed.
    """

    index: int
    prompt: str
    response: str
    prediction: object
    label: object
    latency_s: float | None = None


@dataclass
class TaskRun:
    """The outcome of evaluating one (model, dataset, configuration)."""

    task: str
    dataset: str
    model: str
    k: int
    metric_name: str
    metric: float
    n_examples: int
    predictions: list = field(default_factory=list)
    labels: list = field(default_factory=list)
    details: dict = field(default_factory=dict)
    #: Optional per-example traces (see :class:`ExampleRecord`).
    records: list = field(default_factory=list)
    #: Run telemetry (see :class:`repro.core.manifest.RunManifest`);
    #: always attached by the engine, ``None`` only for hand-built runs.
    manifest: object | None = None

    def describe(self) -> str:
        return (
            f"{self.task}/{self.dataset} {self.model} (k={self.k}): "
            f"{self.metric_name}={100 * self.metric:.1f}"
        )


def subsample(items: list, limit: int | None) -> list:
    """Deterministic head-of-list cap (the paper caps ablations at 200)."""
    if limit is None or limit >= len(items):
        return list(items)
    return list(items[:limit])


def complete_prompts(
    model, prompts: list[str], workers: int | None = None
) -> list[str]:
    """Order-preserving completion of a prompt batch (serial or fanned).

    ``workers=None`` uses the process-wide default (1 unless the CLI's
    ``--workers`` raised it), so runners stay serial-by-default and every
    per-example loop gains concurrency from one switch.  At temperature 0
    the outputs are identical regardless of worker count.
    """
    from repro.api.batch import complete_all

    return complete_all(model, prompts, workers=workers)
