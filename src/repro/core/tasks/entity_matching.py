"""Entity matching as a declarative :class:`TaskSpec`."""

from __future__ import annotations

from functools import partial

from repro.core.demonstrations import DemonstrationSelector
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    EntityMatchingPromptConfig,
    build_entity_matching_prefix,
    build_entity_matching_prompt,
    entity_matching_block,
)
from repro.core.serialization import SerializationConfig
from repro.core.tasks import engine
from repro.core.tasks.common import TaskRun, parse_yes_no
from repro.core.tasks.spec import TaskSpec, register
from repro.datasets.base import EntityMatchingDataset, MatchingPair


def default_prompt_config(
    dataset: EntityMatchingDataset | None = None,
    select_attributes: bool = True,
    include_attribute_names: bool = True,
    question: str | None = None,
) -> EntityMatchingPromptConfig:
    """The paper's default EM prompt for ``dataset``.

    ``select_attributes`` keeps only the dataset's key attributes during
    serialization (Section 4.3's attribute-selection step).  Without a
    dataset (the ad-hoc :class:`~repro.core.Wrangler` path) every knob
    falls back to the template default.
    """
    if dataset is None:
        return EntityMatchingPromptConfig()
    attributes = dataset.key_attributes if select_attributes else dataset.attributes
    serialization = SerializationConfig(
        attributes=tuple(attributes),
        include_attribute_names=include_attribute_names,
    )
    kwargs = {}
    if question is not None:
        kwargs["question"] = question
    return EntityMatchingPromptConfig(
        entity_noun=dataset.entity_noun,
        serialization=serialization,
        **kwargs,
    )


def _binary_score(predictions, labels, _examples):
    metrics = binary_metrics(predictions, labels)
    return metrics.f1, {"precision": metrics.precision, "recall": metrics.recall}


SPEC = register(TaskSpec(
    name="entity_matching",
    metric_name="f1",
    default_k=10,
    build_prompt=lambda pair, demos, config, _k: build_entity_matching_prompt(
        pair, demos, config
    ),
    build_prefix=build_entity_matching_prefix,
    build_suffix=lambda pair, config: entity_matching_block(
        pair, config or EntityMatchingPromptConfig(), include_answer=False
    ),
    parse_response=parse_yes_no,
    label_of=lambda pair: pair.label,
    score=_binary_score,
    default_config=default_prompt_config,
    curation_label_of=lambda pair: pair.label,
    max_validation=48,
    aliases=("em",),
    description="Do two rows refer to the same real-world entity? (Yes/No)",
))

#: Back-compat aliases for the pre-registry per-task helpers; both are the
#: generic engine bound to this task's spec.
select_demonstrations = partial(engine.select_demonstrations, SPEC)
make_validation_scorer = partial(engine.make_validation_scorer, SPEC)


def run_entity_matching(
    model,
    dataset: EntityMatchingDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: EntityMatchingPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
    trace: bool = False,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` with ``k`` demonstrations.

    Thin wrapper over :func:`repro.core.tasks.engine.run_task` with this
    task's spec; kept for call-site compatibility.
    """
    return engine.run_task(
        SPEC, model, dataset, k=k, selection=selection, config=config,
        max_examples=max_examples, split=split, seed=seed, workers=workers,
        trace=trace,
    )
