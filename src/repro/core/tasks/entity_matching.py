"""Entity matching as a prompting task."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.demonstrations import (
    DemonstrationSelector,
    ManualCurator,
    RandomSelector,
)
from repro.core.metrics import binary_metrics
from repro.core.prompts import (
    EntityMatchingPromptConfig,
    build_entity_matching_prompt,
)
from repro.core.serialization import SerializationConfig
from repro.core.tasks.common import (
    TaskRun,
    complete_prompts,
    parse_yes_no,
    subsample,
)
from repro.datasets.base import EntityMatchingDataset, MatchingPair


def default_prompt_config(
    dataset: EntityMatchingDataset,
    select_attributes: bool = True,
    include_attribute_names: bool = True,
    question: str | None = None,
) -> EntityMatchingPromptConfig:
    """The paper's default EM prompt for ``dataset``.

    ``select_attributes`` keeps only the dataset's key attributes during
    serialization (Section 4.3's attribute-selection step).
    """
    attributes = dataset.key_attributes if select_attributes else dataset.attributes
    serialization = SerializationConfig(
        attributes=tuple(attributes),
        include_attribute_names=include_attribute_names,
    )
    kwargs = {}
    if question is not None:
        kwargs["question"] = question
    return EntityMatchingPromptConfig(
        entity_noun=dataset.entity_noun,
        serialization=serialization,
        **kwargs,
    )


def _predict(
    model,
    pairs: Sequence[MatchingPair],
    demonstrations: list[MatchingPair],
    config: EntityMatchingPromptConfig,
    workers: int | None = None,
) -> list[bool]:
    prompts = [
        build_entity_matching_prompt(pair, demonstrations, config)
        for pair in pairs
    ]
    responses = complete_prompts(model, prompts, workers=workers)
    return [parse_yes_no(response) for response in responses]


def make_validation_scorer(
    model,
    dataset: EntityMatchingDataset,
    config: EntityMatchingPromptConfig,
    max_validation: int = 48,
):
    """Score a candidate demonstration list by validation F1."""
    validation = subsample(dataset.valid, max_validation)
    labels = [pair.label for pair in validation]

    def evaluate(demonstrations: list[MatchingPair]) -> float:
        predictions = _predict(model, validation, demonstrations, config)
        return binary_metrics(predictions, labels).f1

    return evaluate


def select_demonstrations(
    model,
    dataset: EntityMatchingDataset,
    k: int,
    config: EntityMatchingPromptConfig,
    selection: str | DemonstrationSelector = "manual",
    seed: int = 0,
) -> list[MatchingPair]:
    """Pick ``k`` demonstrations by name ("manual"/"random") or selector."""
    if k <= 0:
        return []
    if isinstance(selection, DemonstrationSelector):
        return selection.select(dataset.train, k)
    if selection == "random":
        selector = RandomSelector(seed=seed)
    elif selection == "manual":
        selector = ManualCurator(
            evaluate=make_validation_scorer(model, dataset, config),
            seed=seed,
            label_of=lambda pair: pair.label,
        )
    else:
        raise ValueError(f"unknown selection strategy {selection!r}")
    return selector.select(dataset.train, k)


def run_entity_matching(
    model,
    dataset: EntityMatchingDataset,
    k: int = 10,
    selection: str | DemonstrationSelector = "manual",
    config: EntityMatchingPromptConfig | None = None,
    max_examples: int | None = None,
    split: str = "test",
    seed: int = 0,
    workers: int | None = None,
) -> TaskRun:
    """Evaluate ``model`` on ``dataset`` with ``k`` demonstrations.

    ``model`` is anything with a ``complete(prompt) -> str`` method.
    ``workers`` fans the test-set prompts across a thread pool without
    changing the predictions (serial and parallel runs are identical).
    """
    config = config or default_prompt_config(dataset)
    demonstrations = select_demonstrations(model, dataset, k, config, selection, seed)
    pairs = subsample(dataset.split(split), max_examples)
    predictions = _predict(model, pairs, demonstrations, config, workers=workers)
    labels = [pair.label for pair in pairs]
    metrics = binary_metrics(predictions, labels)
    return TaskRun(
        task="entity_matching",
        dataset=dataset.name,
        model=getattr(model, "name", type(model).__name__),
        k=len(demonstrations),
        metric_name="f1",
        metric=metrics.f1,
        n_examples=len(pairs),
        predictions=predictions,
        labels=labels,
        details={"precision": metrics.precision, "recall": metrics.recall},
    )
