"""Prompt templates for the five data tasks (paper Section 3.2).

Prompts are line-oriented: each demonstration is a small block of lines,
blocks are separated by a blank line, and the final block is the query to
complete.  The exact wording of the question line is configurable because
FMs are brittle to it (Table 4's Prompt 1 vs Prompt 2 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.serialization import SerializationConfig, serialize_row
from repro.datasets.base import (
    ErrorExample,
    ImputationExample,
    MatchingPair,
    SchemaPair,
)
from repro.knowledge.medical import SchemaAttribute

YES = "Yes"
NO = "No"

BLOCK_SEPARATOR = "\n\n"


def _label_text(label: bool) -> str:
    return YES if label else NO


def _demonstration_prefix(blocks: list[str]) -> str:
    """Join instruction/demonstration blocks into a reusable prompt prefix.

    The prefix carries its trailing :data:`BLOCK_SEPARATOR` so that every
    full prompt is exactly ``prefix + query_block`` — the byte-level
    identity the prefix cache (:mod:`repro.core.tasks.prefix`) relies on.
    An empty block list (zero-shot, no instruction) yields ``""``, and
    the prompt degrades to the bare query block.

    The separator is whitespace, which also makes
    :func:`repro.api.usage.count_tokens` additive across the split:
    ``count(prefix + suffix) == count(prefix) + count(suffix)``.
    """
    if not blocks:
        return ""
    return BLOCK_SEPARATOR.join(blocks) + BLOCK_SEPARATOR


# ---------------------------------------------------------------------------
# Entity matching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EntityMatchingPromptConfig:
    """Template knobs for EM prompts.

    ``question`` is Prompt 1 by default; Table 4's Prompt 2 replaces "the
    same" with "equivalent".  ``entity_noun`` follows the dataset ("Product",
    "Song", …) though the paper uses "Product" throughout.
    """

    entity_noun: str = "Product"
    question: str = "Are {noun} A and {noun} B the same?"
    serialization: SerializationConfig = field(default_factory=SerializationConfig)
    instruction: str | None = None

    @property
    def question_text(self) -> str:
        return self.question.format(noun=self.entity_noun)


def entity_matching_block(
    pair: MatchingPair,
    config: EntityMatchingPromptConfig,
    include_answer: bool,
) -> str:
    noun = config.entity_noun
    left = serialize_row(pair.left, config.serialization)
    right = serialize_row(pair.right, config.serialization)
    lines = [
        f"{noun} A is {left}.",
        f"{noun} B is {right}.",
        config.question_text + (f" {_label_text(pair.label)}" if include_answer else ""),
    ]
    return "\n".join(lines)


def build_entity_matching_prefix(
    demonstrations: list[MatchingPair],
    config: EntityMatchingPromptConfig | None = None,
) -> str:
    """Instruction + demonstration blocks shared by every EM prompt."""
    config = config or EntityMatchingPromptConfig()
    blocks: list[str] = []
    if config.instruction:
        blocks.append(config.instruction)
    blocks.extend(
        entity_matching_block(demo, config, include_answer=True)
        for demo in demonstrations
    )
    return _demonstration_prefix(blocks)


def build_entity_matching_prompt(
    query: MatchingPair,
    demonstrations: list[MatchingPair],
    config: EntityMatchingPromptConfig | None = None,
) -> str:
    config = config or EntityMatchingPromptConfig()
    return build_entity_matching_prefix(
        demonstrations, config
    ) + entity_matching_block(query, config, include_answer=False)


# ---------------------------------------------------------------------------
# Error detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ErrorDetectionPromptConfig:
    """Template knobs for ED prompts (paper: "Is there an error in attr: val?")."""

    question: str = "Is there an error in {attribute}: {value}?"
    serialization: SerializationConfig = field(default_factory=SerializationConfig)
    include_row_context: bool = True
    instruction: str | None = None


def error_detection_block(
    example: ErrorExample,
    config: ErrorDetectionPromptConfig,
    include_answer: bool,
) -> str:
    value = example.row.get(example.attribute) or ""
    question = config.question.format(attribute=example.attribute, value=value)
    if include_answer:
        question += f" {_label_text(example.label)}"
    if config.include_row_context:
        context = serialize_row(example.row, config.serialization)
        return f"{context}\n{question}"
    return question


def build_error_detection_prefix(
    demonstrations: list[ErrorExample],
    config: ErrorDetectionPromptConfig | None = None,
) -> str:
    """Instruction + demonstration blocks shared by every ED prompt."""
    config = config or ErrorDetectionPromptConfig()
    blocks: list[str] = []
    if config.instruction:
        blocks.append(config.instruction)
    blocks.extend(
        error_detection_block(demo, config, include_answer=True)
        for demo in demonstrations
    )
    return _demonstration_prefix(blocks)


def build_error_detection_prompt(
    query: ErrorExample,
    demonstrations: list[ErrorExample],
    config: ErrorDetectionPromptConfig | None = None,
) -> str:
    config = config or ErrorDetectionPromptConfig()
    return build_error_detection_prefix(
        demonstrations, config
    ) + error_detection_block(query, config, include_answer=False)


# ---------------------------------------------------------------------------
# Data imputation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ImputationPromptConfig:
    """Template knobs for DI prompts (paper: "attr_1: val_1 … attr_j?")."""

    serialization: SerializationConfig = field(default_factory=SerializationConfig)
    instruction: str | None = None


def imputation_block(
    example: ImputationExample,
    config: ImputationPromptConfig,
    include_answer: bool,
) -> str:
    context_attributes = [
        attribute for attribute in example.row
        if attribute != example.attribute
    ]
    serialization = config.serialization
    if serialization.attributes is not None:
        context_attributes = [
            attribute for attribute in serialization.attributes
            if attribute != example.attribute and attribute in example.row
        ]
    context = serialize_row(
        example.row, serialization.with_attributes(context_attributes)
    )
    line = f"{context}. {example.attribute}?"
    if include_answer:
        line += f" {example.answer}"
    return line


def build_imputation_prefix(
    demonstrations: list[ImputationExample],
    config: ImputationPromptConfig | None = None,
) -> str:
    """Instruction + demonstration blocks shared by every DI prompt."""
    config = config or ImputationPromptConfig()
    blocks: list[str] = []
    if config.instruction:
        blocks.append(config.instruction)
    blocks.extend(
        imputation_block(demo, config, include_answer=True)
        for demo in demonstrations
    )
    return _demonstration_prefix(blocks)


def build_imputation_prompt(
    query: ImputationExample,
    demonstrations: list[ImputationExample],
    config: ImputationPromptConfig | None = None,
) -> str:
    config = config or ImputationPromptConfig()
    return build_imputation_prefix(
        demonstrations, config
    ) + imputation_block(query, config, include_answer=False)


# ---------------------------------------------------------------------------
# Schema matching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SchemaMatchingPromptConfig:
    """Template knobs for SM prompts."""

    question: str = "Are Attribute A and Attribute B semantically equivalent?"
    include_samples: bool = True
    instruction: str | None = None


def _describe_attribute(attribute: SchemaAttribute, include_samples: bool) -> str:
    text = f"{attribute.table}.{attribute.name} ({attribute.description})"
    if include_samples and attribute.sample_values:
        samples = ", ".join(attribute.sample_values[:3])
        text += f" with values like {samples}"
    return text


def schema_matching_block(
    pair: SchemaPair,
    config: SchemaMatchingPromptConfig,
    include_answer: bool,
) -> str:
    lines = [
        f"Attribute A is {_describe_attribute(pair.left, config.include_samples)}.",
        f"Attribute B is {_describe_attribute(pair.right, config.include_samples)}.",
        config.question + (f" {_label_text(pair.label)}" if include_answer else ""),
    ]
    return "\n".join(lines)


def build_schema_matching_prefix(
    demonstrations: list[SchemaPair],
    config: SchemaMatchingPromptConfig | None = None,
) -> str:
    """Instruction + demonstration blocks shared by every SM prompt."""
    config = config or SchemaMatchingPromptConfig()
    blocks: list[str] = []
    if config.instruction:
        blocks.append(config.instruction)
    blocks.extend(
        schema_matching_block(demo, config, include_answer=True)
        for demo in demonstrations
    )
    return _demonstration_prefix(blocks)


def build_schema_matching_prompt(
    query: SchemaPair,
    demonstrations: list[SchemaPair],
    config: SchemaMatchingPromptConfig | None = None,
) -> str:
    config = config or SchemaMatchingPromptConfig()
    return build_schema_matching_prefix(
        demonstrations, config
    ) + schema_matching_block(query, config, include_answer=False)


# ---------------------------------------------------------------------------
# Data transformation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransformationPromptConfig:
    """Template knobs for DT prompts (Input:/Output: pairs)."""

    instruction: str | None = None


def build_transformation_prompt(
    query_input: str,
    demonstrations: list[tuple[str, str]],
    config: TransformationPromptConfig | None = None,
) -> str:
    config = config or TransformationPromptConfig()
    blocks: list[str] = []
    if config.instruction:
        blocks.append(config.instruction)
    blocks.extend(
        f"Input: {source}\nOutput: {target}" for source, target in demonstrations
    )
    blocks.append(f"Input: {query_input}\nOutput:")
    return BLOCK_SEPARATOR.join(blocks)
