"""Tabular data serialization (paper Section 3.1).

``serialize(e) := attr_1: val_1. attr_2: val_2. …`` — NULL values become
the empty string, and serialization may run over a task-relevant subset of
attributes (the attribute-selection step ablated in Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.table import Row


#: Supported row-to-text styles: the paper's ``attr: val`` rendering and
#: Ditto's ``COL attr VAL val`` rendering (both appear in the released
#: fm_data_tasks code; the FM's prompt parser understands either).
STYLES = ("colon", "ditto")


@dataclass(frozen=True)
class SerializationConfig:
    """How to render a row as text.

    ``attributes`` — serialize only these, in this order (None = all row
    attributes in row order).  ``include_attribute_names`` — the Table 4
    "w/o Attr. names" ablation drops the ``attr:`` prefixes.  ``style`` —
    "colon" (``attr: val. attr: val``) or "ditto" (``COL attr VAL val``).
    """

    attributes: tuple[str, ...] | None = None
    include_attribute_names: bool = True
    pair_separator: str = ". "
    key_value_separator: str = ": "
    style: str = "colon"

    def __post_init__(self):
        if self.style not in STYLES:
            raise ValueError(f"unknown serialization style {self.style!r}")

    def with_attributes(self, attributes: list[str] | None) -> "SerializationConfig":
        return SerializationConfig(
            attributes=tuple(attributes) if attributes is not None else None,
            include_attribute_names=self.include_attribute_names,
            pair_separator=self.pair_separator,
            key_value_separator=self.key_value_separator,
            style=self.style,
        )


def _clean_value(value: str | None) -> str:
    """NULL → empty string; newlines collapsed (prompts are line-oriented)."""
    if value is None:
        return ""
    return " ".join(str(value).split())


def serialize_row(row: Row, config: SerializationConfig | None = None) -> str:
    """Serialize ``row`` per ``config``.

    >>> serialize_row({"name": "pcanywhere 11.0", "price": None})
    'name: pcanywhere 11.0. price: '
    """
    config = config or SerializationConfig()
    attributes = (
        list(config.attributes) if config.attributes is not None else list(row)
    )
    parts: list[str] = []
    for attribute in attributes:
        value = _clean_value(row.get(attribute))
        if not config.include_attribute_names:
            if value:
                parts.append(value)
        elif config.style == "ditto":
            parts.append(f"COL {attribute} VAL {value}")
        else:
            parts.append(f"{attribute}{config.key_value_separator}{value}")
    if config.style == "ditto" and config.include_attribute_names:
        return " ".join(parts)
    return config.pair_separator.join(parts)
